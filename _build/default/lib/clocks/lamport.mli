(** Lamport scalar clocks (Lamport 1978, the paper's reference [5]).

    A scalar clock assigns every event a timestamp such that
    [e ⤳ e' ⇒ ts e < ts e'] for distinct events — consistency with
    causality, without the converse (vector clocks, {!Vector},
    characterize causality exactly).

    [tick] advances on a local event; [send] produces the value to
    piggyback; [observe] merges a received value. *)

type t

val create : unit -> t
(** A fresh clock at 0. *)

val now : t -> int
(** Current value (timestamp of the latest local event). *)

val tick : t -> int
(** Advance for an internal event; returns the event's timestamp. *)

val send : t -> int
(** Advance for a send event; returns the timestamp to attach to the
    message. *)

val observe : t -> int -> int
(** [observe c ts] advances for a receive event of a message carrying
    timestamp [ts]: the clock becomes [max local ts + 1]. Returns the
    receive event's timestamp. *)

val stamp_trace : n:int -> Hpl_core.Trace.t -> (Hpl_core.Event.t * int) list
(** Timestamps every event of a computation, threading one clock per
    process and piggybacking on messages — the classic offline
    assignment. Raises [Invalid_argument] on ill-formed traces. *)

val consistent_with_causality : n:int -> Hpl_core.Trace.t -> bool
(** Checks [e ⤳ e' ∧ e ≠ e' ⇒ ts e < ts e'] for the assignment of
    {!stamp_trace}. *)
