(** Causal message delivery.

    A computation delivers causally when no process receives [m2]
    before [m1] if [send m1 ⤳ send m2] and both are addressed to it —
    the Birman–Schiper–Stephenson condition expressed with the
    vector timestamps of {!Vector}. Causal delivery bounds how
    "out of order" learning can be: it is the weakest delivery rule
    under which a process's knowledge grows monotonically along every
    sender's causal history. *)

val delivers_causally : n:int -> Hpl_core.Trace.t -> bool
(** Whether every process's receive order respects the causal order of
    the corresponding sends. *)

val violations :
  n:int -> Hpl_core.Trace.t -> (Hpl_core.Msg.t * Hpl_core.Msg.t) list
(** Pairs [(m1, m2)] delivered to the same process in the order
    [m2, m1] although [send m1 ⤳ send m2]. Empty iff
    {!delivers_causally}. *)

val fifo_per_channel : Hpl_core.Trace.t -> bool
(** The weaker FIFO condition: per (src, dst) pair, receives follow
    send order. Causal delivery implies it. *)
