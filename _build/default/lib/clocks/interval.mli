(** Causality between nonatomic operations (interval events).

    The paper's events are atomic; real operations (a critical section,
    an RPC, a transaction) span {e intervals} of events. Following
    Lamport's system-execution treatment, for intervals [A], [B] of one
    computation:

    - [A precedes B] ([A → B]): {e every} event of [A] happens-before
      {e every} event of [B] — it suffices that [A]'s last event
      happens-before [B]'s first;
    - [A can_affect B] ([A ⇢ B]): {e some} event of [A] happens-before
      some event of [B];
    - otherwise the intervals are {!concurrent}.

    [precedes] is an irreflexive strict partial order (on
    non-overlapping intervals); [can_affect] is its weak companion
    ([A → B ⇒ A ⇢ B], and [¬(B ⇢ A) ⇒] nothing of [B] leaked into
    [A]). Extraction helpers build intervals from enter/exit internal
    events, so the mutual-exclusion protocols' critical sections become
    intervals whose total [precedes]-order {e is} the exclusion
    property (tested in the suite). *)

type t = {
  owner : Hpl_core.Pid.t;
  first : int;  (** trace position of the first event *)
  last : int;  (** trace position of the last event; [first <= last] *)
}

val make : owner:Hpl_core.Pid.t -> first:int -> last:int -> t
(** Raises [Invalid_argument] if [first > last]. *)

val precedes : Hpl_core.Causality.t -> t -> t -> bool
(** [A → B]: [A]'s last event strictly happens-before [B]'s first
    (distinct positions). *)

val can_affect : Hpl_core.Causality.t -> t -> t -> bool
(** [A ⇢ B]: some event of [A] happens-before (or coincides with) some
    event of [B]; overlapping intervals can affect each other in both
    directions. Irreflexive by convention (an interval does not "affect
    itself"). *)

val concurrent : Hpl_core.Causality.t -> t -> t -> bool
(** Neither [A ⇢ B] nor [B ⇢ A]. *)

val of_bracketing :
  enter:string -> exit:string -> Hpl_core.Trace.t -> t list
(** Extracts one interval per enter/exit pair of internal events (per
    process, in order). Unmatched enters extend to the trace end. *)

val totally_ordered : Hpl_core.Causality.t -> t list -> bool
(** Every pair of distinct intervals is ordered by {!precedes} one way
    or the other — e.g. what mutual exclusion guarantees for critical
    sections. *)

val pp : Format.formatter -> t -> unit
