open Hpl_core

type t = { me : int; v : int array }

let create ~n ~me =
  if Pid.to_int me >= n then invalid_arg "Dependency.create: pid out of range";
  { me = Pid.to_int me; v = Array.make n 0 }

let tick c =
  c.v.(c.me) <- c.v.(c.me) + 1;
  c.v.(c.me)

let send = tick

let observe c ~src count =
  let s = Pid.to_int src in
  if count > c.v.(s) then c.v.(s) <- count;
  tick c

let read c = Array.copy c.v

let stamp_trace ~n z =
  (match Trace.well_formed_error z with
  | Some reason -> invalid_arg ("Dependency.stamp_trace: " ^ reason)
  | None -> ());
  let clocks = Array.init n (fun i -> create ~n ~me:(Pid.of_int i)) in
  let msg_count : (Pid.t * int, int) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun e ->
      let c = clocks.(Pid.to_int e.Event.pid) in
      (match e.Event.kind with
      | Event.Internal _ -> ignore (tick c)
      | Event.Send m -> Hashtbl.replace msg_count (Msg.key m) (send c)
      | Event.Receive m ->
          ignore (observe c ~src:m.Msg.src (Hashtbl.find msg_count (Msg.key m))));
      (e, read c))
    (Trace.to_list z)

let reconstruct ~n z =
  let stamped = Array.of_list (stamp_trace ~n z) in
  let len = Array.length stamped in
  (* positions of each process's k-th event (1-based count) *)
  let pos_of : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i (e, _) ->
      Hashtbl.replace pos_of (Pid.to_int e.Event.pid, e.Event.lseq + 1) i)
    stamped;
  (* direct predecessor edges from the dependency vectors; close
     transitively over positions *)
  let reach = Array.make_matrix len len false in
  Array.iteri
    (fun i (e, v) ->
      reach.(i).(i) <- true;
      (* same-process predecessor *)
      if e.Event.lseq > 0 then begin
        match Hashtbl.find_opt pos_of (Pid.to_int e.Event.pid, e.Event.lseq) with
        | Some j -> reach.(j).(i) <- true
        | None -> ()
      end;
      (* direct dependencies on other processes *)
      Array.iteri
        (fun q cnt ->
          if q <> Pid.to_int e.Event.pid && cnt > 0 then
            match Hashtbl.find_opt pos_of (q, cnt) with
            | Some j -> reach.(j).(i) <- true
            | None -> ())
        v)
    stamped;
  for k = 0 to len - 1 do
    for i = 0 to len - 1 do
      if reach.(i).(k) then
        for j = 0 to len - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  fun i j -> reach.(i).(j)
