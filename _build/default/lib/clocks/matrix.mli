(** Matrix clocks — operational second-order knowledge.

    A matrix clock at process [p] stores, for every pair [(q, r)],
    [p]'s best lower bound on "how many of [r]'s events [q] has seen".
    Row [p] is [p]'s own vector clock; row [q] is a conservative
    estimate of [q]'s vector clock. This is the classical mechanism
    that makes statements like "p knows that q knows that r has passed
    event 5" — the paper's nested knowledge ([P knows Q knows b]) for
    event-counting local predicates — decidable {e online}, without
    enumerating a universe. The test-suite validates the estimates
    against the exact knowledge engine. *)

type t

val create : n:int -> me:Hpl_core.Pid.t -> t
val me : t -> Hpl_core.Pid.t

val read : t -> int array array
(** Snapshot (fresh matrix). [read c].(q).(r) is the bound described
    above. *)

val own_vector : t -> int array
(** Row [me] — the process's plain vector clock. *)

val tick : t -> unit
val send : t -> int array array
(** Advance own entry and return the matrix to piggyback. *)

val observe : t -> src:Hpl_core.Pid.t -> int array array -> unit
(** Merge a received matrix: own row joins the sender's row (plus all
    rows pointwise); then count the receive on own row. *)

val knows_count : t -> about:Hpl_core.Pid.t -> int
(** [knows_count c ~about:r] = how many of [r]'s events [me] has
    (transitively) learned of. *)

val knows_that_knows : t -> mid:Hpl_core.Pid.t -> about:Hpl_core.Pid.t -> int
(** [knows_that_knows c ~mid:q ~about:r]: a sound lower bound on "the
    number k such that [me] knows that [q] knows that [r] has executed
    ≥ k events". *)

val stamp_trace :
  n:int -> Hpl_core.Trace.t -> (Hpl_core.Event.t * int array array) list
(** Offline assignment over a computation. *)
