open Hpl_core

type report = {
  detector : string;
  underlying_msgs : int;
  overhead_msgs : int;
  detected : bool;
  sound : bool;
  terminated : bool;
  detection_latency_events : int option;
  total_events : int;
}

let detect_tag_of name = name ^ ":detected"

let detection_position ~detect_tag z =
  let rec go i = function
    | [] -> None
    | e :: rest ->
        (match e.Event.kind with
        | Event.Internal tag when String.equal tag detect_tag -> Some i
        | _ -> go (i + 1) rest)
  in
  go 0 (Trace.to_list z)

let score ~detector ~detect_tag z =
  let sent = Trace.sent z in
  let underlying_msgs =
    List.length (List.filter (fun m -> Underlying.is_work m.Msg.payload) sent)
  in
  let overhead_msgs = List.length sent - underlying_msgs in
  let detection = detection_position ~detect_tag z in
  let termination = Underlying.termination_position z in
  let terminated = termination <> None in
  let detected = detection <> None in
  let sound, latency =
    match (detection, termination) with
    | None, _ -> (true, None) (* silent detectors are vacuously sound *)
    | Some _, None -> (false, None) (* announced although never terminated *)
    | Some d, Some t -> (d >= t, Some (d - t))
  in
  {
    detector;
    underlying_msgs;
    overhead_msgs;
    detected;
    sound;
    terminated;
    detection_latency_events = latency;
    total_events = Trace.length z;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "%s: M=%d overhead=%d detected=%b sound=%b terminated=%b latency=%s"
    r.detector r.underlying_msgs r.overhead_msgs r.detected r.sound r.terminated
    (match r.detection_latency_events with
    | Some l -> string_of_int l
    | None -> "-")

let row_header =
  Printf.sprintf "%-10s %10s %10s %8s %8s %8s %10s" "detector" "underlying"
    "overhead" "ratio" "detected" "sound" "latency"

let report_row r =
  Printf.sprintf "%-10s %10d %10d %8s %8b %8b %10s" r.detector
    r.underlying_msgs r.overhead_msgs
    (if r.underlying_msgs = 0 then "-"
     else Printf.sprintf "%.2f" (float_of_int r.overhead_msgs /. float_of_int r.underlying_msgs))
    r.detected r.sound
    (match r.detection_latency_events with
    | Some l -> string_of_int l
    | None -> "-")
