(** Tiny wire format for protocol payloads.

    Simulator payloads are strings; protocols encode structured
    messages as ["tag:i1,i2,…"]. Decoding is total: malformed payloads
    yield [None], so protocols can ignore foreign traffic (e.g. a
    detector skipping underlying messages). *)

val enc : string -> int list -> string
val dec : string -> (string * int list) option
(** [dec "work:3,4"] is [Some ("work", \[3; 4\])]. *)

val tag : string -> string option
(** Just the tag. *)

val is : string -> string -> bool
(** [is t payload]: payload's tag equals [t]. *)
