let enc tag ints =
  match ints with
  | [] -> tag
  | _ -> tag ^ ":" ^ String.concat "," (List.map string_of_int ints)

let dec payload =
  match String.index_opt payload ':' with
  | None -> if payload = "" then None else Some (payload, [])
  | Some i ->
      let tag = String.sub payload 0 i in
      let rest = String.sub payload (i + 1) (String.length payload - i - 1) in
      let parts = String.split_on_char ',' rest in
      let ints =
        List.fold_right
          (fun part acc ->
            match (acc, int_of_string_opt part) with
            | Some tl, Some v -> Some (v :: tl)
            | _ -> None)
          parts (Some [])
      in
      (match ints with Some l -> Some (tag, l) | None -> None)

let tag payload = Option.map fst (dec payload)
let is t payload = tag payload = Some t
