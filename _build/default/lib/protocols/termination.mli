(** Shared vocabulary for the §5 termination-detection experiments.

    The paper proves that detecting termination of an underlying
    computation requires, in general, at least as many overhead
    (control) messages as there are underlying messages. Every detector
    in this library runs the same {!Underlying} workload, marks its
    detection with a distinguished internal event, and is scored here:
    overhead messages, detection correctness (not before true
    termination), and latency. *)

type report = {
  detector : string;
  underlying_msgs : int;  (** work messages sent *)
  overhead_msgs : int;  (** every non-work message sent *)
  detected : bool;  (** the detector announced termination *)
  sound : bool;  (** announcement not before true termination *)
  terminated : bool;  (** ground truth: workload finished in this run *)
  detection_latency_events : int option;
      (** events between true termination and the announcement *)
  total_events : int;
}

val detect_tag_of : string -> string
(** [detect_tag_of "ds"] is the internal-event tag a detector logs on
    announcement ("ds:detected"). *)

val score :
  detector:string -> detect_tag:string -> Hpl_core.Trace.t -> report
(** Scores a recorded run. Soundness compares the announcement's
    position with {!Underlying.termination_position}. *)

val pp_report : Format.formatter -> report -> unit
val report_row : report -> string
(** Fixed-width table row (bench output). *)

val row_header : string
