lib/protocols/bully.mli: Hpl_core Hpl_sim
