lib/protocols/underlying.mli: Hpl_core Hpl_sim
