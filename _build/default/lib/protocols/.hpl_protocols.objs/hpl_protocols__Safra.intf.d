lib/protocols/safra.mli: Hpl_core Hpl_sim Termination Underlying
