lib/protocols/echo.ml: Chain Engine Event Hpl_core Hpl_sim List Msg Pid Pset String Trace Wire
