lib/protocols/lamport_mutex.ml: Array Engine Event Hpl_core Hpl_sim List Msg Pid String Trace Wire
