lib/protocols/token_ring.ml: Array Engine Event Hashtbl Hpl_core Hpl_sim Int64 List Msg Pid Rng String Trace Wire
