lib/protocols/deadlock.ml: Array Bool Engine Hpl_core Hpl_sim List Pid String Trace Wire
