lib/protocols/dijkstra_scholten.ml: Engine Hpl_core Hpl_sim List Pid Termination Underlying Wire
