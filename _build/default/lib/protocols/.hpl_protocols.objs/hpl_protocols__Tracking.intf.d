lib/protocols/tracking.mli: Hpl_core
