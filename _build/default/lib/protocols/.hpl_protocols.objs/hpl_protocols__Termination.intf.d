lib/protocols/termination.mli: Format Hpl_core
