lib/protocols/bully.ml: Array Engine Hpl_core Hpl_sim List Pid String Trace Wire
