lib/protocols/wire.ml: List Option String
