lib/protocols/ricart_agrawala.ml: Array Engine Event Hpl_core Hpl_sim List Pid String Trace Wire
