lib/protocols/failure_detector.ml: Array Engine Event Hpl_core Hpl_sim Knowledge List Pid Printf Prop Pset Spec String Trace Universe Wire
