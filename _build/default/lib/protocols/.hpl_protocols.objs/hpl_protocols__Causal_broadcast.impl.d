lib/protocols/causal_broadcast.ml: Array Engine Hpl_core Hpl_sim List Pid Printf String Trace Wire
