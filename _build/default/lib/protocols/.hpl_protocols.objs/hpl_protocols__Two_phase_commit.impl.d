lib/protocols/two_phase_commit.ml: Array Engine Event Fun Hpl_core Hpl_sim Knowledge List Msg Pid Prop Pset Spec String Trace Universe Wire
