lib/protocols/two_generals.mli: Hpl_core
