lib/protocols/credit.mli: Hpl_core Hpl_sim Termination Underlying
