lib/protocols/paxos.ml: Engine Event Hpl_core Hpl_sim Int List Msg Option Pid Printf String Trace Wire
