lib/protocols/lamport_mutex.mli: Hpl_core Hpl_sim
