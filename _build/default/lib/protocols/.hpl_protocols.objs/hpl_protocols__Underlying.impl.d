lib/protocols/underlying.ml: Engine Event Hpl_core Hpl_sim Int64 List Msg Pid Rng Trace Wire
