lib/protocols/token_bus.mli: Hpl_core
