lib/protocols/snapshot_term.ml: Array Engine Hpl_core Hpl_sim List Pid String Termination Underlying Wire
