lib/protocols/ricart_agrawala.mli: Hpl_core Hpl_sim
