lib/protocols/probe.mli: Hpl_core Hpl_sim Termination Underlying
