lib/protocols/causal_broadcast.mli: Hpl_core Hpl_sim
