lib/protocols/chang_roberts.ml: Array Chain Engine Hpl_core Hpl_sim List Msg Pid Pset Rng String Trace Wire
