lib/protocols/two_generals.ml: Common_knowledge Event Hpl_core Knowledge List Msg Pid Prop Pset Spec String Trace Universe
