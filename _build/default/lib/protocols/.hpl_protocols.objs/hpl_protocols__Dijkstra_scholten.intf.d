lib/protocols/dijkstra_scholten.mli: Hpl_core Hpl_sim Termination Underlying
