lib/protocols/chang_roberts.mli: Hpl_core Hpl_sim
