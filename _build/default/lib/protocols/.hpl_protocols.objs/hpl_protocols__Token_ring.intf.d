lib/protocols/token_ring.mli: Hpl_core Hpl_sim
