lib/protocols/probe.ml: Engine Hpl_core Hpl_sim List Pid String Termination Underlying Wire
