lib/protocols/echo.mli: Hpl_core Hpl_sim
