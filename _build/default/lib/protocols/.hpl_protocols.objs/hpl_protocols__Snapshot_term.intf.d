lib/protocols/snapshot_term.mli: Hpl_core Hpl_sim Termination Underlying
