lib/protocols/paxos.mli: Hpl_core Hpl_sim
