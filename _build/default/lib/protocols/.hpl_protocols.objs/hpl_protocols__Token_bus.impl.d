lib/protocols/token_bus.ml: Event Hpl_core Knowledge List Pid Printf Prop Pset Spec Trace Universe
