lib/protocols/snapshot.mli: Hpl_core Hpl_sim
