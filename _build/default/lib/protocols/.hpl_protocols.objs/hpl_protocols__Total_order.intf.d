lib/protocols/total_order.mli: Hpl_core Hpl_sim
