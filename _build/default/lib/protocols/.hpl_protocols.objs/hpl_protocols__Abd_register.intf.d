lib/protocols/abd_register.mli: Hpl_core Hpl_sim
