lib/protocols/tracking.ml: Event Hpl_core Knowledge List Pid Prop Pset Spec String Trace Universe
