lib/protocols/abd_register.ml: Engine Event Hashtbl Hpl_core Hpl_sim Int List Option Pid Printf String Trace Wire
