lib/protocols/gossip.mli: Hpl_core Hpl_sim
