lib/protocols/total_order.ml: Array Engine Hpl_core Hpl_sim List Pid Printf String Trace Wire
