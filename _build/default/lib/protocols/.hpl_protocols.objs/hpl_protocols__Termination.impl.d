lib/protocols/termination.ml: Event Format Hpl_core List Msg Printf String Trace Underlying
