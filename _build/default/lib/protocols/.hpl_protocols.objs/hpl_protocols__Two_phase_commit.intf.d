lib/protocols/two_phase_commit.mli: Hpl_core Hpl_sim
