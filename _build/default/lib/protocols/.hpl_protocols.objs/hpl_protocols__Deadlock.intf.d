lib/protocols/deadlock.mli: Hpl_core Hpl_sim
