lib/protocols/snapshot.ml: Array Engine Event Hashtbl Hpl_core Hpl_sim Int64 List Msg Option Pid Rng String Trace Wire
