lib/protocols/failure_detector.mli: Hpl_core Hpl_sim
