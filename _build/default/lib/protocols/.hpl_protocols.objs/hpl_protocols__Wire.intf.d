lib/protocols/wire.mli:
