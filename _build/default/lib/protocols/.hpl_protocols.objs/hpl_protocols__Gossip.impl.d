lib/protocols/gossip.ml: Array Engine Event Hpl_core Hpl_sim Int64 List Msg Pid Rng String Trace Wire
