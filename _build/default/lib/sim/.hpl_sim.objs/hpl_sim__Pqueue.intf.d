lib/sim/pqueue.mli:
