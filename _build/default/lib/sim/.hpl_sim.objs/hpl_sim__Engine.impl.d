lib/sim/engine.ml: Array Event Hashtbl Hpl_core List Msg Pid Pqueue Printf Rng Trace
