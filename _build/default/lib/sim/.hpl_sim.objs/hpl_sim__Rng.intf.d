lib/sim/rng.mli:
