lib/sim/engine.mli: Hpl_core
