type 'a entry = { time : float; seqno : int; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length q = q.size
let is_empty q = q.size = 0

let less a b = a.time < b.time || (a.time = b.time && a.seqno < b.seqno)

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q.data.(i) q.data.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && less q.data.(l) q.data.(!smallest) then smallest := l;
  if r < q.size && less q.data.(r) q.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q entry =
  let cap = Array.length q.data in
  if q.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let ndata = Array.make ncap entry in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let push q ~time ~seqno value =
  let entry = { time; seqno; value } in
  grow q entry;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.seqno, top.value)
  end

let peek q =
  if q.size = 0 then None
  else
    let top = q.data.(0) in
    Some (top.time, top.seqno, top.value)
