(** Binary min-heap priority queue for the event scheduler.

    Keys are [(time, seqno)] pairs compared lexicographically; the
    seqno makes extraction deterministic when times tie, which keeps
    whole simulations reproducible. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seqno:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Least [(time, seqno)] first. *)

val peek : 'a t -> (float * int * 'a) option
