(** Deterministic pseudo-random numbers (splitmix64).

    The simulator must be reproducible: every run is a pure function of
    its seed, so experiments in EXPERIMENTS.md can be regenerated
    bit-for-bit. Splitmix64 is small, fast, and passes BigCrush for
    this purpose; implemented from scratch (no external dependency). *)

type t

val create : int64 -> t
(** A generator seeded deterministically. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
val split : t -> t
(** An independent generator derived from this one (for per-node
    streams that must not depend on scheduling order). *)
