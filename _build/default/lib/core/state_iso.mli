(** State-based isomorphism — the first generalization sketched in §6.

    "We can define isomorphism based on states of processes, rather
    than computations … Most of the results in this paper are
    applicable in the first case."

    A {!view} abstracts a process's local computation into a {e state};
    two system computations are state-isomorphic w.r.t. [P] when every
    [p ∈ P] is in the same state in both. Computation-based isomorphism
    is the special case {!full} (the state is the whole history); any
    other view is coarser, so a process knows {e less} under it — made
    precise by {!Laws.coarser_knows_less}.

    What survives the generalization (and is checked by tests/bench):
    state-knowledge is still S5 (an equivalence does all the work), the
    twelve §4.1 facts hold verbatim, and {!Laws.full_coincides} ties the
    construction back to {!Knowledge}. What does {e not} survive in
    general: predicates local-to-[P] under a forgetful view need not
    determine [b] ({!Laws} exposes checkers so the boundary can be
    mapped empirically). *)

type view = {
  name : string;
  observe : Pid.t -> Event.t list -> string;
      (** the process's state, encoded; equality of encodings is
          equality of states *)
}

val full : view
(** State = the entire local computation: coincides with [\[p\]]. *)

val counters : view
(** State = (sends, receives, internals) counts — forgets order and
    content. *)

val last_event : view
(** State = the most recent local event (or "init") — forgets depth. *)

val message_log : view
(** State = the multiset of message payloads sent and received —
    forgets internal events and ordering. *)

type t
(** A view bound to a universe, with its partitions precomputed. *)

val make : Universe.t -> view -> t
val universe : t -> Universe.t
val view_name : t -> string

val iso : t -> Pset.t -> int -> int -> bool
(** State-isomorphism between computations, by universe index. *)

val iso_traces : view -> Trace.t -> Trace.t -> Pset.t -> bool
(** Trace-level test (no universe needed). *)

val class_of : t -> Pset.t -> int -> Bitset.t

val knows_ext : t -> Pset.t -> Bitset.t -> Bitset.t
val knows : t -> Pset.t -> Prop.t -> Prop.t
(** [P] state-knows [b]: [b] holds at every state-indistinguishable
    computation. *)

module Laws : sig
  val s5_veridical : t -> Pset.t -> Prop.t -> bool
  val s5_positive_introspection : t -> Pset.t -> Prop.t -> bool
  val s5_negative_introspection : t -> Pset.t -> Prop.t -> bool
  val conjunction : t -> Pset.t -> Prop.t -> Prop.t -> bool

  val full_coincides : Universe.t -> Pset.t -> Prop.t -> bool
  (** Under {!full}, state-knowledge = the paper's knowledge. *)

  val coarser_knows_less : t -> t -> Pset.t -> Prop.t -> bool
  (** If the first view refines the second (finer partitions on every
      process), the second yields a subset of the first's knowledge.
      Vacuously true when there is no refinement. *)

  val refines : t -> t -> bool
  (** Per-process partition refinement over the whole universe. *)
end
