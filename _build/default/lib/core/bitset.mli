(** Dense bitsets.

    The knowledge engine represents a predicate extensionally as the set
    of universe indices where it holds; all knowledge operators then
    become bitset algebra ([knows] is a class-wise AND, common knowledge
    a fixpoint of intersections). Sets are fixed-length and mutable;
    the pure operators ({!union}, {!inter}, …) allocate fresh sets. *)

type t

val create : int -> t
(** [create n] is the empty set over domain [{0..n-1}]. *)

val create_full : int -> t
(** [create_full n] is the full set over domain [{0..n-1}]. *)

val length : t -> int
(** Domain size. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val copy : t -> t

val cardinal : t -> int
val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b]: every member of [a] is in [b]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

val inter_into : t -> t -> unit
(** [inter_into a b] updates [a] to [a ∩ b]. *)

val union_into : t -> t -> unit

val of_pred : int -> (int -> bool) -> t
val iter : (int -> unit) -> t -> unit
(** Iterates over members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val to_list : t -> int list
val choose : t -> int option
(** Least member, if any. *)

val pp : Format.formatter -> t -> unit
