let cuts_and_sat ~n z b =
  let cuts = Cut.all_consistent ~n z in
  List.map (fun c -> (c, b (Cut.sub_computation z c))) cuts

let possibly ~n z b = List.exists snd (cuts_and_sat ~n z b)

let witnesses ~n z b =
  List.filter_map (fun (c, sat) -> if sat then Some c else None) (cuts_and_sat ~n z b)

(* Lattice successors: cuts one event larger. *)
let successors cuts c =
  List.filter
    (fun c' ->
      Cut.leq c c'
      && Array.fold_left ( + ) 0 (Cut.counts c') = Array.fold_left ( + ) 0 (Cut.counts c) + 1)
    cuts

(* [definitely]: on the cut DAG from bottom to top, is every maximal
   path forced through a satisfying cut? Equivalently: can an adversary
   path avoid b all the way? *)
let definitely ~n z b =
  let sat = cuts_and_sat ~n z b in
  let cuts = List.map fst sat in
  let table = Hashtbl.create 64 in
  List.iter (fun (c, s) -> Hashtbl.replace table (Cut.counts c) s) sat;
  let satisfies c = Hashtbl.find table (Cut.counts c) in
  let top = Cut.top ~of_:z ~n in
  (* avoid(c): exists a b-free path from c to top *)
  let memo = Hashtbl.create 64 in
  let rec avoid c =
    match Hashtbl.find_opt memo (Cut.counts c) with
    | Some v -> v
    | None ->
        let v =
          if satisfies c then false
          else if Cut.equal c top then true
          else
            match successors cuts c with
            | [] -> true (* should not happen below top, but safe *)
            | succs -> List.exists avoid succs
        in
        Hashtbl.add memo (Cut.counts c) v;
        v
  in
  not (avoid (Cut.bottom ~n))

let first_definite_level ~n z b =
  if not (definitely ~n z b) then None
  else begin
    let sat = cuts_and_sat ~n z b in
    let cuts = List.map fst sat in
    let table = Hashtbl.create 64 in
    List.iter (fun (c, s) -> Hashtbl.replace table (Cut.counts c) s) sat;
    let satisfies c = Hashtbl.find table (Cut.counts c) in
    (* deepest(c): the largest number of b-free steps an adversary can
       take starting at c (before being forced into b or the top) *)
    let memo = Hashtbl.create 64 in
    let rec deepest c =
      match Hashtbl.find_opt memo (Cut.counts c) with
      | Some v -> v
      | None ->
          let v =
            if satisfies c then 0
            else
              match successors cuts c with
              | [] -> 0
              | succs -> 1 + List.fold_left (fun m s -> max m (deepest s)) 0 succs
          in
          Hashtbl.add memo (Cut.counts c) v;
          v
    in
    Some (deepest (Cut.bottom ~n))
  end
