type t = { events : Event.t array; vts : int array array }

let compute ~n z =
  (match Trace.well_formed_error z with
  | Some reason -> invalid_arg ("Causality.compute: " ^ reason)
  | None -> ());
  let events = Array.of_list (Trace.to_list z) in
  let len = Array.length events in
  let vts = Array.make len [||] in
  let proc_vec = Array.init n (fun _ -> Array.make n 0) in
  (* send position by message key, to join timestamps on receive *)
  let send_pos : (Pid.t * int, int) Hashtbl.t = Hashtbl.create 16 in
  for k = 0 to len - 1 do
    let e = events.(k) in
    let p = Pid.to_int e.Event.pid in
    let v = Array.copy proc_vec.(p) in
    (match e.Event.kind with
    | Event.Receive m ->
        let sp = Hashtbl.find send_pos (Msg.key m) in
        Array.iteri (fun q x -> if x > v.(q) then v.(q) <- x) vts.(sp)
    | Event.Send m -> Hashtbl.replace send_pos (Msg.key m) k
    | Event.Internal _ -> ());
    v.(p) <- v.(p) + 1;
    vts.(k) <- v;
    proc_vec.(p) <- v
  done;
  { events; vts }

let length t = Array.length t.events
let event_at t i = t.events.(i)
let vt t i = t.vts.(i)

let hb t i j =
  i = j
  ||
  let e = t.events.(i) in
  let p = Pid.to_int e.Event.pid in
  t.vts.(j).(p) >= e.Event.lseq + 1

let position_of t e =
  let rec go i =
    if i >= Array.length t.events then None
    else if Event.equal t.events.(i) e then Some i
    else go (i + 1)
  in
  go 0

let concurrent t i j = (not (hb t i j)) && not (hb t j i)

let causal_past t i =
  let acc = ref [] in
  for j = Array.length t.events - 1 downto 0 do
    if hb t j i then acc := j :: !acc
  done;
  !acc
