type mode = [ `Full | `Canonical ]

module TraceTbl = Hashtbl.Make (struct
  type t = Trace.t

  let equal = Trace.equal
  let hash = Trace.hash
end)

module ProjTbl = Hashtbl.Make (struct
  type t = Event.t list

  let equal = List.equal Event.equal
  let hash l = Hashtbl.hash (List.map Event.hash l)
end)

type t = {
  spec : Spec.t;
  mode : mode;
  depth : int;
  comps : Trace.t array;
  idx : int TraceTbl.t;
  class_ids_by_pid : int array array; (* pid index -> comp index -> class id *)
  pset_ids_memo : (int list, int array) Hashtbl.t;
  classes_memo : (int list, Bitset.t array) Hashtbl.t;
}

(* --- canonical linearizations ------------------------------------- *)

(* Direct predecessors of [e] within a fixed event set: the previous
   event on the same process, and the corresponding send if [e] is a
   receive. All other causal ordering is their transitive closure. *)
let is_direct_pred ~of_:e c =
  (Pid.equal c.Event.pid e.Event.pid && c.Event.lseq = e.Event.lseq - 1)
  ||
  match e.Event.kind with
  | Event.Receive m -> (
      match c.Event.kind with Event.Send m' -> Msg.equal m m' | _ -> false)
  | Event.Send _ | Event.Internal _ -> false

(* Greedy least linearization: repeatedly emit the Event.compare-least
   event whose direct predecessors have all been emitted. For a valid
   computation this is exactly the lexicographically least interleaving
   of its [\[D\]]-class. *)
let canon_trace z =
  let rec go remaining acc =
    match remaining with
    | [] -> Trace.of_list (List.rev acc)
    | _ ->
        let ready =
          List.filter
            (fun e ->
              not
                (List.exists
                   (fun c -> (not (Event.equal c e)) && is_direct_pred ~of_:e c)
                   remaining))
            remaining
        in
        let least =
          match ready with
          | [] -> invalid_arg "Universe.canon: cyclic or ill-formed trace"
          | e :: rest -> List.fold_left (fun m c -> if Event.compare c m < 0 then c else m) e rest
        in
        go (List.filter (fun e -> not (Event.equal e least)) remaining) (least :: acc)
  in
  go (Trace.to_list z) []

(* [z] canonical, [e] enabled after [z]: is [(z;e)] canonical?  [e]
   becomes available right after its last direct predecessor; canonical
   means no later-placed event exceeds [e]. *)
let snoc_is_canonical z e =
  let events = Trace.to_list z in
  let _, avail =
    List.fold_left
      (fun (i, avail) c ->
        (i + 1, if is_direct_pred ~of_:e c then i + 1 else avail))
      (0, 0) events
  in
  let rec check i = function
    | [] -> true
    | c :: rest ->
        if i < avail then check (i + 1) rest
        else Event.compare c e < 0 && check (i + 1) rest
  in
  check 0 events

(* --- enumeration --------------------------------------------------- *)

let enumerate ?(mode = `Canonical) spec ~depth =
  if depth < 0 then invalid_arg "Universe.enumerate: negative depth";
  let acc = ref [ Trace.empty ] and count = ref 1 in
  let keep z e =
    match mode with `Full -> true | `Canonical -> snoc_is_canonical z e
  in
  let rec level frontier d =
    if d >= depth || frontier = [] then ()
    else begin
      let next =
        List.concat_map
          (fun z ->
            List.filter_map
              (fun e -> if keep z e then Some (Trace.snoc z e) else None)
              (Spec.enabled spec z))
          frontier
      in
      List.iter
        (fun z ->
          acc := z :: !acc;
          incr count)
        next;
      level next (d + 1)
    end
  in
  level [ Trace.empty ] 0;
  let comps = Array.make !count Trace.empty in
  (* [!acc] holds computations in reverse discovery order *)
  List.iteri (fun k z -> comps.(!count - 1 - k) <- z) !acc;
  let idx = TraceTbl.create (2 * !count) in
  Array.iteri (fun i z -> TraceTbl.replace idx z i) comps;
  let class_ids_by_pid =
    Array.init (Spec.n spec) (fun pi ->
        let p = Pid.of_int pi in
        let tbl = ProjTbl.create (2 * !count) in
        let next = ref 0 in
        Array.map
          (fun z ->
            let key = Trace.proj z p in
            match ProjTbl.find_opt tbl key with
            | Some id -> id
            | None ->
                let id = !next in
                incr next;
                ProjTbl.add tbl key id;
                id)
          comps)
  in
  {
    spec;
    mode;
    depth;
    comps;
    idx;
    class_ids_by_pid;
    pset_ids_memo = Hashtbl.create 16;
    classes_memo = Hashtbl.create 16;
  }

let spec u = u.spec
let mode u = u.mode
let depth u = u.depth
let size u = Array.length u.comps
let comp u i = u.comps.(i)
let index u z = TraceTbl.find_opt u.idx z
let canon _u z = canon_trace z

let find u z =
  match u.mode with
  | `Full -> index u z
  | `Canonical -> (
      match index u z with Some i -> Some i | None -> index u (canon_trace z))

let find_exn u z = match find u z with Some i -> i | None -> raise Not_found
let iter f u = Array.iteri f u.comps

let fold f u init =
  let acc = ref init in
  Array.iteri (fun i z -> acc := f i z !acc) u.comps;
  !acc

let class_ids u p = u.class_ids_by_pid.(Pid.to_int p)
let pset_key ps = List.map Pid.to_int (Pset.to_list ps)

let pset_class_ids u ps =
  let key = pset_key ps in
  match Hashtbl.find_opt u.pset_ids_memo key with
  | Some ids -> ids
  | None ->
      let n = size u in
      let ids =
        if Pset.is_empty ps then Array.make n 0
        else begin
          (* combine per-process class ids into fresh ids *)
          let tbl : (int list, int) Hashtbl.t = Hashtbl.create (2 * n) in
          let next = ref 0 in
          Array.init n (fun i ->
              let combined =
                List.map (fun p -> (class_ids u p).(i)) (Pset.to_list ps)
              in
              match Hashtbl.find_opt tbl combined with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.add tbl combined id;
                  id)
        end
      in
      Hashtbl.add u.pset_ids_memo key ids;
      ids

let classes u ps =
  let key = pset_key ps in
  match Hashtbl.find_opt u.classes_memo key with
  | Some cs -> cs
  | None ->
      let ids = pset_class_ids u ps in
      let n = size u in
      let nclasses = Array.fold_left (fun m id -> max m (id + 1)) 0 ids in
      let cs = Array.init nclasses (fun _ -> Bitset.create n) in
      Array.iteri (fun i id -> Bitset.add cs.(id) i) ids;
      Hashtbl.add u.classes_memo key cs;
      cs

let class_members u ps i =
  let ids = pset_class_ids u ps in
  (classes u ps).(ids.(i))

let prefixes_of u i =
  let z = comp u i in
  let rec go prefix events acc =
    let acc =
      match find u prefix with Some j -> j :: acc | None -> acc
    in
    match events with
    | [] -> acc
    | e :: rest -> go (Trace.snoc prefix e) rest acc
  in
  List.rev (go Trace.empty (Trace.to_list z) [])

let pp_stats fmt u =
  Format.fprintf fmt "universe: %d computations, depth %d, mode %s, %d processes"
    (size u) u.depth
    (match u.mode with `Full -> "full" | `Canonical -> "canonical")
    (Spec.n u.spec)
