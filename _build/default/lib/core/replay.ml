let spec_of_trace ~n z =
  (match Trace.well_formed_error z with
  | Some reason -> invalid_arg ("Replay.spec_of_trace: " ^ reason)
  | None -> ());
  (* per-process scripts: the fixed local computations *)
  let scripts =
    Array.init n (fun i -> Array.of_list (Trace.proj z (Pid.of_int i)))
  in
  Spec.make ~n (fun p history ->
      let script = scripts.(Pid.to_int p) in
      let k = List.length history in
      (* the rule only fires along its own script; any deviating history
         is unreachable anyway, but be conservative *)
      let followed =
        k <= Array.length script
        && List.for_all2 Event.equal history
             (Array.to_list (Array.sub script 0 k))
      in
      if (not followed) || k >= Array.length script then []
      else
        match script.(k).Event.kind with
        | Event.Send m -> [ Spec.Send_to (m.Msg.dst, m.Msg.payload) ]
        | Event.Receive m ->
            [
              Spec.Recv_if
                ( "the scripted message",
                  fun m' -> Msg.equal m m' );
            ]
        | Event.Internal tag -> [ Spec.Do tag ])

let universe_of_trace ?(mode = `Canonical) ~n z =
  Universe.enumerate ~mode (spec_of_trace ~n z) ~depth:(Trace.length z)

let knew_at ~n z ps b =
  let u = universe_of_trace ~n z in
  let k = Knowledge.knows u ps b in
  let events = Trace.to_list z in
  let rec go prefix i = function
    | [] -> None
    | e :: rest ->
        let prefix = Trace.snoc prefix e in
        if Prop.eval k prefix then Some i else go prefix (i + 1) rest
  in
  if Prop.eval k Trace.empty then Some (-1) else go Trace.empty 0 events
