(** How knowledge is transferred (§4.3, Theorems 4–6 and Lemma 4).

    The paper's key theorems: chains of knowledge are gained and lost
    {e sequentially}. If [¬(Pn knows b)] at [x] and
    [P1 knows … Pn knows b] later at [y], information flowed along a
    process chain [<Pn … P1>] in [(x,y)]; dually, losing established
    nested knowledge requires a chain [<P1 … Pn>]. Lemma 4 pins down
    the per-event mechanics for predicates local to [P̄]: a receive
    cannot lose knowledge, a send cannot gain it, an internal event
    does neither.

    All checkers return [true] when the implication they embody holds
    for the given instance (vacuously if the premise fails); the
    [explain_*] variants also extract the chain witness the theorem
    promises. *)

type gain_report = {
  premise : bool;  (** [¬(Pn knows b) at x] ∧ nested knowledge at [y] *)
  chain : Event.t list option;  (** witness [<Pn … P1>] in [(x,y)] *)
}

type loss_report = {
  premise : bool;  (** nested knowledge at [x] ∧ [¬(Pn knows b) at y] *)
  chain : Event.t list option;  (** witness [<P1 … Pn>] in [(x,y)] *)
}

val theorem4 :
  Universe.t -> Pset.t list -> Prop.t -> x:Trace.t -> y:Trace.t -> bool
(** Theorem 4: [(P1 knows … Pn knows b) at x ∧ x \[P1 … Pn\] y] ⇒
    [(Pn knows b) at y]. *)

val theorem4_sure :
  Universe.t -> Pset.t list -> Prop.t -> x:Trace.t -> y:Trace.t -> bool
(** The [sure] variant of Theorem 4 (the paper's corollary), in its
    sound reading: [P1 knows … P(n-1) knows (Pn sure b) at x ∧
    x \[P1…Pn\] y ⇒ (Pn sure b) at y]. Replacing {e every} level by
    [sure] is falsifiable — a process can be sure of another's
    unsureness — and the test-suite keeps the counterexample. *)

val theorem5_gain :
  Universe.t -> Pset.t list -> Prop.t -> x:Trace.t -> y:Trace.t -> bool
(** Theorem 5 (knowledge gain): [x ≤ y], [¬(Pn knows b) at x],
    [(P1 knows … Pn knows b) at y] ⇒ chain [<Pn … P1>] in [(x,y)]. *)

val explain_gain :
  Universe.t -> Pset.t list -> Prop.t -> x:Trace.t -> y:Trace.t -> gain_report

val theorem6_loss :
  Universe.t -> Pset.t list -> Prop.t -> x:Trace.t -> y:Trace.t -> bool
(** Theorem 6 (knowledge loss): [x ≤ y],
    [(P1 knows … Pn knows b) at x], [¬(Pn knows b) at y] ⇒ chain
    [<P1 … Pn>] in [(x,y)]. *)

val explain_loss :
  Universe.t -> Pset.t list -> Prop.t -> x:Trace.t -> y:Trace.t -> loss_report

(** Lemma 4: effect of one event on [P]'s knowledge of a predicate
    local to [P̄]. Each checker takes the computation [x], the event
    [e] on [P], and verifies its clause. *)
module Lemma4 : sig
  val receive_no_loss :
    Universe.t -> p:Pset.t -> b:Prop.t -> x:Trace.t -> e:Event.t -> bool
  (** [(P knows b) at x ⇒ (P knows b) at (x;e)] for [e] a receive. *)

  val send_no_gain :
    Universe.t -> p:Pset.t -> b:Prop.t -> x:Trace.t -> e:Event.t -> bool
  (** [(P knows b) at (x;e) ⇒ (P knows b) at x] for [e] a send. *)

  val internal_no_change :
    Universe.t -> p:Pset.t -> b:Prop.t -> x:Trace.t -> e:Event.t -> bool
  (** Equality for [e] internal. *)

  val requires_locality : Universe.t -> Pset.t -> Prop.t -> bool
  (** Whether the lemma's locality premise ([b] local to [P̄]) holds —
      exposed so tests can restrict instances. *)
end

val corollary_gain_receives :
  Universe.t -> p:Pset.t -> b:Prop.t -> x:Trace.t -> y:Trace.t -> bool
(** Corollary: [b] local to [P̄], [¬(P knows b) at x],
    [(P knows b) at y], [x ≤ y] ⇒ [P] has a receive event in [(x,y)]. *)

val corollary_loss_sends :
  Universe.t -> p:Pset.t -> b:Prop.t -> x:Trace.t -> y:Trace.t -> bool
(** Corollary: [b] local to [P̄], [(P knows b) at x],
    [¬(P knows b) at y], [x ≤ y] ⇒ [P] has a send event in [(x,y)]. *)
