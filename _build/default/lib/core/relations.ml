let step u ps s =
  (* all computations [ps]-isomorphic to some member of [s] *)
  let ids = Universe.pset_class_ids u ps in
  let classes = Universe.classes u ps in
  let out = Bitset.create (Universe.size u) in
  let seen = Array.make (Array.length classes) false in
  Bitset.iter
    (fun i ->
      let c = ids.(i) in
      if not seen.(c) then begin
        seen.(c) <- true;
        Bitset.union_into out classes.(c)
      end)
    s;
  out

let saturate u pss s = List.fold_left (fun acc ps -> step u ps acc) s pss

let reachable u pss x =
  let s = Bitset.create (Universe.size u) in
  Bitset.add s x;
  saturate u pss s

let related u pss x z = Bitset.mem (reachable u pss x) z

let related_traces u pss x z =
  related u pss (Universe.find_exn u x) (Universe.find_exn u z)
