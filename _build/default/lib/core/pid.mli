(** Process identifiers.

    The paper's model (§2) is built on a finite set of processes. A
    {!t} identifies one process; identifiers are small non-negative
    integers so that they can index arrays (vector clocks, partitions).
    A human-readable name can be attached for diagrams and logs. *)

type t
(** A process identifier. *)

val of_int : int -> t
(** [of_int i] is the process with index [i]. Raises [Invalid_argument]
    if [i < 0]. *)

val to_int : t -> int
(** [to_int p] is the integer index of [p]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints [p3] style identifiers, or the registered name if any. *)

val to_string : t -> string

val set_name : t -> string -> unit
(** [set_name p n] registers [n] as the display name of [p]. Names are
    global and intended for small, human-facing examples (e.g. the token
    bus processes p,q,r,s,t of §4.1). *)

val name : t -> string option
(** [name p] is the registered display name of [p], if any. *)
