module S = Set.Make (Pid)

type t = S.t

let empty = S.empty
let singleton = S.singleton
let of_list = S.of_list
let to_list = S.elements
let add = S.add
let remove = S.remove
let mem = S.mem
let cardinal = S.cardinal
let is_empty = S.is_empty
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let disjoint = S.disjoint
let equal = S.equal
let compare = S.compare
let fold = S.fold
let iter = S.iter
let for_all = S.for_all
let exists = S.exists
let filter = S.filter

let all n =
  let rec build i acc = if i < 0 then acc else build (i - 1) (S.add (Pid.of_int i) acc) in
  build (n - 1) S.empty

let compl ~all p = S.diff all p

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Pid.pp)
    (to_list s)

let to_string s = Format.asprintf "%a" pp s
