(** Global-predicate detection over the lattice of consistent cuts
    (Cooper–Marzullo).

    An observer reconstructing a run can only bracket the truth of a
    global predicate — exactly the paper's §5 lesson about remote
    tracking. For a recorded computation [z] and a predicate [b] on
    global states (sub-computations):

    - [possibly b]: some consistent cut of [z] satisfies [b] — the
      predicate {e may} have held;
    - [definitely b]: every observer path (maximal chain of consistent
      cuts from bottom to top) passes through a cut satisfying [b] —
      the predicate {e must} have held, whatever the real interleaving.

    [definitely b ⇒ possibly b]; both are decided exactly on the cut
    lattice (exponential in concurrency — intended for analysis of
    moderate traces, like every exact tool here). *)

val possibly : n:int -> Trace.t -> (Trace.t -> bool) -> bool
(** [possibly ~n z b]: some consistent cut's sub-computation satisfies
    [b]. *)

val definitely : n:int -> Trace.t -> (Trace.t -> bool) -> bool
(** Every maximal path through the cut lattice (stepping one event at a
    time) hits a [b]-cut. *)

val witnesses : n:int -> Trace.t -> (Trace.t -> bool) -> Cut.t list
(** The consistent cuts whose sub-computation satisfies [b]. *)

val first_definite_level : n:int -> Trace.t -> (Trace.t -> bool) -> int option
(** If [definitely b], the smallest [k] such that every path has hit a
    [b]-cut within its first [k] steps — a latency measure for
    detection. [None] when not definite. *)
