type node = { id : string; label : string; shape : string option }
type edge = { src : string; dst : string; label : string; directed : bool }

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let graph ?(name = "g") ~directed nodes edges =
  let b = Buffer.create 1024 in
  Buffer.add_string b (if directed then "digraph " else "graph ");
  Buffer.add_string b (escape name);
  Buffer.add_string b " {\n";
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" [label=\"%s\"%s];\n" (escape n.id)
           (escape n.label)
           (match n.shape with
           | Some s -> Printf.sprintf " shape=%s" s
           | None -> "")))
    nodes;
  List.iter
    (fun e ->
      let arrow = if e.directed then "->" else "--" in
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" %s \"%s\" [label=\"%s\"];\n" (escape e.src)
           arrow (escape e.dst) (escape e.label)))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
