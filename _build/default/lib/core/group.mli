(** Group knowledge operators.

    The paper's [P knows b] quantifies over [\[P\]] — the {e pooled}
    indistinguishability of the group, which epistemic logic calls
    {e distributed knowledge}. Two other group modalities are standard
    and definable in the same model:

    - [everyone]: each member individually knows ([E_G b = ⋀ p knows b]);
    - [someone]: at least one member knows ([S_G b = ⋁ p knows b]).

    Their relationships are theorems of the model (checked in the test
    suite): [someone ⊆ everyone-on-singletons], [everyone ⊆ distributed]
    (pooling can only help), iterating [everyone] strictly descends to
    common knowledge ({!Common_knowledge}), and [distributed] knowledge
    of a group equals the paper's [P knows]. *)

val everyone : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [everyone u g b]: every process in [g] knows [b]. For the empty
    group this is [true] everywhere (empty conjunction). *)

val someone : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [someone u g b]: some process in [g] knows [b]. Empty group: [false]. *)

val distributed : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [distributed u g b] is exactly {!Knowledge.knows} — exposed under
    its epistemic-logic name. *)

val everyone_ext : Universe.t -> Pset.t -> Bitset.t -> Bitset.t
val someone_ext : Universe.t -> Pset.t -> Bitset.t -> Bitset.t

val e_iterate : Universe.t -> Pset.t -> int -> Prop.t -> Prop.t
(** [e_iterate u g k b] is [E_G^k b] — "everyone knows" iterated [k]
    times ([k = 0] is [b]). Decreasing in [k]; its limit intersected
    with [b] is common knowledge restricted to [g = D]. *)

(** Decidable relationships, for tests and bench E6+. *)
module Laws : sig
  val everyone_implies_distributed : Universe.t -> Pset.t -> Prop.t -> bool
  (** [E_G b ⇒ D_G b] (pooling refines). *)

  val someone_of_singleton : Universe.t -> Pid.t -> Prop.t -> bool
  (** On singletons all three operators coincide. *)

  val distributed_monotone : Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
  (** [G ⊆ H ⇒ (D_G b ⇒ D_H b)] — the paper's fact 3. *)

  val e_chain_decreasing : Universe.t -> Pset.t -> int -> Prop.t -> bool
  (** [E^{k+1} b ⊆ E^k b] for all k below the bound. *)
end
