(** Fusing computations (§3.3, Figures 3-2 and 3-3).

    Two computations that extend a common prefix [x] on disjoint
    process sets can be concatenated into one ({!lemma1}); more
    generally, {e any} two extensions of [x] can be fused — keeping
    [P]'s events from one and [P̄]'s from the other — provided no
    process chain carries information across the cut ({!theorem2}).
    The paper notes the result generalizes to any number of parts
    ({!fuse_many}).

    Constructors verify their preconditions and return [Error reason]
    when they fail, so property tests can drive them blindly. *)

val lemma1 :
  all:Pset.t ->
  x:Trace.t ->
  y:Trace.t ->
  z:Trace.t ->
  p:Pset.t ->
  q:Pset.t ->
  (Trace.t, string) result
(** Preconditions: [x ≤ y], [x ≤ z], [P ∪ Q = D], [x \[P\] y],
    [x \[Q\] z]. Result [w = x;(x,y);(x,z)] satisfies [x ≤ w],
    [y \[Q\] w], [z \[P\] w], and is well-formed. *)

val theorem2 :
  all:Pset.t ->
  n:int ->
  x:Trace.t ->
  y:Trace.t ->
  z:Trace.t ->
  p:Pset.t ->
  (Trace.t, string) result
(** Preconditions: [x ≤ y], [x ≤ z], no chain [<P̄ P>] in [(x,y)], no
    chain [<P P̄>] in [(x,z)]. Result [w] consists of [x], then all of
    [(x,y)]'s events on [P], then all of [(x,z)]'s events on [P̄]; it
    satisfies [y \[P\] w] and [z \[P̄\] w]. *)

val fuse_many :
  all:Pset.t ->
  n:int ->
  x:Trace.t ->
  (Pset.t * Trace.t) list ->
  (Trace.t, string) result
(** [fuse_many ~all ~n ~x parts]: the parts' process sets must
    partition [D]; each [yi] must extend [x] with no chain
    [<P̄i Pi>] in [(x, yi)]. The fusion keeps each [Pi]'s events from
    its [yi]. [theorem2] is the two-part instance. *)

val verify_lemma1 :
  all:Pset.t -> x:Trace.t -> y:Trace.t -> z:Trace.t -> p:Pset.t -> q:Pset.t ->
  w:Trace.t -> bool
(** Checks the conclusion of Lemma 1 ([x ≤ w], [y \[Q\] w],
    [z \[P\] w], well-formed) for an alleged fusion [w]. *)

val verify_theorem2 :
  all:Pset.t -> x:Trace.t -> y:Trace.t -> z:Trace.t -> p:Pset.t -> w:Trace.t ->
  bool
(** Checks [x ≤ w], [y \[P\] w], [z \[P̄\] w] and well-formedness. *)
