type guard = Universe.t -> Prop.t

let know ps b u = Knowledge.knows u ps b
let nknow ps b u = Prop.not_ (Knowledge.knows u ps b)
let sure ps b u = Knowledge.sure u ps b
let gtrue _ = Prop.tt
let gand a b u = Prop.and_ (a u) (b u)
let gor a b u = Prop.or_ (a u) (b u)
let gnot a u = Prop.not_ (a u)

type rule = { guard : guard; intent : Spec.intent }
type t = Pid.t -> Event.t list -> rule list

let unrestricted ~n prog =
  Spec.make ~n (fun p history -> List.map (fun r -> r.intent) (prog p history))

module HistTbl = Hashtbl.Make (struct
  type t = int * Event.t list

  let equal (p, h) (p', h') = p = p' && List.equal Event.equal h h'
  let hash (p, h) = Hashtbl.hash (p, List.map Event.hash h)
end)

let compile ~universe ~n prog =
  (* Pre-evaluate every rule once per distinct (process, local history)
     appearing in the universe. *)
  let enabled_intents : Spec.intent list HistTbl.t = HistTbl.create 64 in
  let process_history p history witness_idx =
    let key = (Pid.to_int p, history) in
    if not (HistTbl.mem enabled_intents key) then begin
      let rules = prog p history in
      let intents =
        List.filter_map
          (fun r ->
            let prop = r.guard universe in
            let ext = Prop.extent universe prop in
            (* locality check: the guard must be constant on the
               process's isomorphism class *)
            let cls = Universe.class_members universe (Pset.singleton p) witness_idx in
            let value = Bitset.mem ext witness_idx in
            Bitset.iter
              (fun j ->
                if Bitset.mem ext j <> value then
                  invalid_arg
                    (Format.asprintf
                       "Kprogram.compile: guard of %a (intent on history of \
                        length %d) is not local to the process"
                       Pid.pp p (List.length history)))
              cls;
            if value then Some r.intent else None)
          rules
      in
      HistTbl.add enabled_intents key intents
    end
  in
  Universe.iter
    (fun i z ->
      List.iter
        (fun pi ->
          let p = Pid.of_int pi in
          process_history p (Trace.proj z p) i)
        (List.init n (fun i -> i)))
    universe;
  Spec.make ~n (fun p history ->
      match HistTbl.find_opt enabled_intents (Pid.to_int p, history) with
      | Some intents -> intents
      | None -> [])

let guard_of_formula env f =
  (* static sanity: the syntax must at least parse into something whose
     atoms the env could resolve; resolution itself happens per
     universe *)
  Ok
    (fun u ->
      match Formula.eval u ~env f with
      | Ok p -> p
      | Error e -> invalid_arg ("Kprogram.guard_of_formula: " ^ e))

type solution = { universe : Universe.t; spec : Spec.t; iterations : int }

let universes_equal a b =
  Universe.size a = Universe.size b
  && Universe.fold (fun _ z acc -> acc && Universe.index b z <> None) a true

let solve ?(mode = `Canonical) ?(max_iters = 10) ~n ~depth prog =
  let base = unrestricted ~n prog in
  let u0 = Universe.enumerate ~mode base ~depth in
  let rec iterate u k =
    if k > max_iters then
      Error
        (Printf.sprintf "no fixpoint after %d iterations (oscillating guards?)"
           max_iters)
    else
      let spec = compile ~universe:u ~n prog in
      let u' = Universe.enumerate ~mode spec ~depth in
      if universes_equal u u' then Ok { universe = u'; spec; iterations = k }
      else iterate u' (k + 1)
  in
  iterate u0 1
