(** Minimal Graphviz DOT emission, used for isomorphism diagrams. *)

type node = { id : string; label : string; shape : string option }
type edge = { src : string; dst : string; label : string; directed : bool }

val graph :
  ?name:string -> directed:bool -> node list -> edge list -> string
(** Renders a DOT graph. Identifiers and labels are escaped. *)

val escape : string -> string
