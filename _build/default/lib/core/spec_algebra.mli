(** Composition of system specifications.

    Utilities to build systems out of systems:

    - {!parallel}: two independent systems side by side (process ids of
      the second are shifted). Since the components share nothing, the
      canonical universe of the composite is the product of the
      components' — an equality the tests verify, and the cleanest
      possible statement of "these processes have nothing to say to
      each other": every knowledge question about one side is untouched
      by the other (checked via {!Knowledge} in the suite).
    - {!restrict}: filter a system's intents (e.g. forbid a process
      from sending, bound an experiment).
    - {!bound_events}: cap every process's local computation length —
      turns any system into an inherently finite one, making bounded
      universes exact (the horizon-artifact cure used throughout the
      test-suite, packaged).
    - {!rename}: apply a payload transformation to all send intents
      (tagging subsystem traffic). *)

val parallel : Spec.t -> Spec.t -> Spec.t
(** [parallel a b] has [n a + n b] processes; the first [n a] behave as
    [a], the rest as [b] with pids shifted. Raises if either component
    addresses a process outside itself (enforced lazily: a shifted
    intent addressing across the boundary raises at enumeration
    time). *)

val restrict : Spec.t -> (Pid.t -> Spec.intent -> bool) -> Spec.t
(** Keep only the intents the filter accepts. *)

val bound_events : Spec.t -> int -> Spec.t
(** [bound_events s k]: as [s], but a process with [k] local events
    enables nothing further. *)

val rename_payloads : Spec.t -> (string -> string) -> Spec.t
(** Transform the payload of every send intent. The mapping must be
    injective if the renamed system is to be isomorphic to the
    original. *)
