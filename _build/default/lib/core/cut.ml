type t = int array

let of_counts a =
  Array.iter (fun k -> if k < 0 then invalid_arg "Cut.of_counts: negative") a;
  Array.copy a

let counts c = Array.copy c
let n c = Array.length c
let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let leq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let bottom ~n = Array.make n 0

let top ~of_ ~n =
  Array.init n (fun i -> Trace.local_length of_ (Pid.of_int i))

let join a b = Array.map2 max a b
let meet a b = Array.map2 min a b

let inside c e = e.Event.lseq < c.(Pid.to_int e.Event.pid)

let consistent ~n:nprocs z c =
  Array.length c = nprocs
  && Array.for_all2 ( >= )
       (Array.init nprocs (fun i -> Trace.local_length z (Pid.of_int i)))
       c
  &&
  (* every receive inside has its send inside *)
  let send_of : (Pid.t * int, Event.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.Event.kind with
      | Event.Send m -> Hashtbl.replace send_of (Msg.key m) e
      | Event.Receive _ | Event.Internal _ -> ())
    (Trace.to_list z);
  List.for_all
    (fun e ->
      match e.Event.kind with
      | Event.Receive m when inside c e -> inside c (Hashtbl.find send_of (Msg.key m))
      | _ -> true)
    (Trace.to_list z)

let of_prefix ~n:nprocs z =
  Array.init nprocs (fun i -> Trace.local_length z (Pid.of_int i))

let events z c = List.filter (inside c) (Trace.to_list z)
let sub_computation z c = Trace.of_list (events z c)

let all_consistent ~n:nprocs z =
  let limits = top ~of_:z ~n:nprocs in
  let out = ref [] in
  let c = Array.make nprocs 0 in
  let rec enumerate i =
    if i = nprocs then begin
      if consistent ~n:nprocs z c then out := Array.copy c :: !out
    end
    else
      for k = 0 to limits.(i) do
        c.(i) <- k;
        enumerate (i + 1)
      done
  in
  enumerate 0;
  List.sort compare !out

let count_consistent ~n z = List.length (all_consistent ~n z)

let pp fmt c =
  Format.fprintf fmt "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int c)))
