let event_line e =
  match e.Event.kind with
  | Event.Send m ->
      Printf.sprintf "S %d %d %d %d %S" (Pid.to_int e.Event.pid) e.Event.lseq
        (Pid.to_int m.Msg.dst) m.Msg.seq m.Msg.payload
  | Event.Receive m ->
      Printf.sprintf "R %d %d %d %d %S" (Pid.to_int e.Event.pid) e.Event.lseq
        (Pid.to_int m.Msg.src) m.Msg.seq m.Msg.payload
  | Event.Internal tag ->
      Printf.sprintf "I %d %d %S" (Pid.to_int e.Event.pid) e.Event.lseq tag

let to_string z =
  String.concat "\n" (List.map event_line (Trace.to_list z)) ^ "\n"

let parse_line line =
  let fail () = Error (Printf.sprintf "malformed line: %s" line) in
  try
    match line.[0] with
    | 'S' ->
        Scanf.sscanf line "S %d %d %d %d %S" (fun pid lseq dst seq payload ->
            Ok
              (Event.send ~pid:(Pid.of_int pid) ~lseq
                 (Msg.make ~src:(Pid.of_int pid) ~dst:(Pid.of_int dst) ~seq
                    ~payload)))
    | 'R' ->
        Scanf.sscanf line "R %d %d %d %d %S" (fun pid lseq src seq payload ->
            Ok
              (Event.receive ~pid:(Pid.of_int pid) ~lseq
                 (Msg.make ~src:(Pid.of_int src) ~dst:(Pid.of_int pid) ~seq
                    ~payload)))
    | 'I' ->
        Scanf.sscanf line "I %d %d %S" (fun pid lseq tag ->
            Ok (Event.internal ~pid:(Pid.of_int pid) ~lseq tag))
    | _ -> fail ()
  with Scanf.Scan_failure _ | Failure _ | End_of_file | Invalid_argument _ ->
    fail ()

let of_string s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc lineno = function
    | [] -> (
        let z = Trace.of_list (List.rev acc) in
        match Trace.well_formed_error z with
        | None -> Ok z
        | Some reason -> Error ("parsed trace not well-formed: " ^ reason))
    | line :: rest -> (
        match parse_line line with
        | Ok e -> go (e :: acc) (lineno + 1) rest
        | Error reason -> Error (Printf.sprintf "line %d: %s" lineno reason))
  in
  go [] 1 lines

let save path z =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string z))

let load path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        of_string (really_input_string ic len))
  with Sys_error reason -> Error reason
