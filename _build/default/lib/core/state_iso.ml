type view = { name : string; observe : Pid.t -> Event.t list -> string }

let full =
  {
    name = "full";
    observe = (fun _ history -> String.concat ";" (List.map Event.to_string history));
  }

let counters =
  {
    name = "counters";
    observe =
      (fun _ history ->
        let s = List.length (List.filter Event.is_send history) in
        let r = List.length (List.filter Event.is_receive history) in
        let i = List.length (List.filter Event.is_internal history) in
        Printf.sprintf "%d/%d/%d" s r i);
  }

let last_event =
  {
    name = "last-event";
    observe =
      (fun _ history ->
        match List.rev history with
        | [] -> "init"
        | e :: _ -> Event.to_string e);
  }

let message_log =
  {
    name = "message-log";
    observe =
      (fun _ history ->
        history
        |> List.filter_map (fun e ->
               match e.Event.kind with
               | Event.Send m -> Some ("!" ^ m.Msg.payload)
               | Event.Receive m -> Some ("?" ^ m.Msg.payload)
               | Event.Internal _ -> None)
        |> List.sort String.compare
        |> String.concat ",");
  }

type t = {
  u : Universe.t;
  view : view;
  ids_by_pid : int array array; (* pid -> comp index -> state class id *)
  pset_memo : (int list, int array) Hashtbl.t;
}

let make u view =
  let nprocs = Spec.n (Universe.spec u) in
  let size = Universe.size u in
  let ids_by_pid =
    Array.init nprocs (fun pi ->
        let p = Pid.of_int pi in
        let tbl : (string, int) Hashtbl.t = Hashtbl.create (2 * size) in
        let next = ref 0 in
        let ids = Array.make size 0 in
        Universe.iter
          (fun i z ->
            let key = view.observe p (Trace.proj z p) in
            let id =
              match Hashtbl.find_opt tbl key with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.add tbl key id;
                  id
            in
            ids.(i) <- id)
          u;
        ids)
  in
  { u; view; ids_by_pid; pset_memo = Hashtbl.create 8 }

let universe t = t.u
let view_name t = t.view.name

let pset_ids t ps =
  let key = List.map Pid.to_int (Pset.to_list ps) in
  match Hashtbl.find_opt t.pset_memo key with
  | Some ids -> ids
  | None ->
      let size = Universe.size t.u in
      let ids =
        if Pset.is_empty ps then Array.make size 0
        else begin
          let tbl : (int list, int) Hashtbl.t = Hashtbl.create (2 * size) in
          let next = ref 0 in
          Array.init size (fun i ->
              let combined =
                List.map (fun p -> t.ids_by_pid.(Pid.to_int p).(i)) (Pset.to_list ps)
              in
              match Hashtbl.find_opt tbl combined with
              | Some id -> id
              | None ->
                  let id = !next in
                  incr next;
                  Hashtbl.add tbl combined id;
                  id)
        end
      in
      Hashtbl.add t.pset_memo key ids;
      ids

let iso t ps i j =
  let ids = pset_ids t ps in
  ids.(i) = ids.(j)

let iso_traces view x y ps =
  Pset.for_all
    (fun p -> String.equal (view.observe p (Trace.proj x p)) (view.observe p (Trace.proj y p)))
    ps

let class_of t ps i =
  let ids = pset_ids t ps in
  Bitset.of_pred (Universe.size t.u) (fun j -> ids.(j) = ids.(i))

let knows_ext t ps ext =
  let ids = pset_ids t ps in
  let size = Universe.size t.u in
  let nclasses = Array.fold_left (fun m id -> max m (id + 1)) 0 ids in
  (* a class is "good" unless it contains a point outside ext *)
  let good = Array.make nclasses true in
  for i = 0 to size - 1 do
    if not (Bitset.mem ext i) then good.(ids.(i)) <- false
  done;
  Bitset.of_pred size (fun i -> good.(ids.(i)))

let knows t ps b =
  Prop.of_extent t.u
    (Format.asprintf "%a knows[%s] %s" Pset.pp ps t.view.name (Prop.name b))
    (knows_ext t ps (Prop.extent t.u b))

module Laws = struct
  let s5_veridical t ps b =
    Bitset.subset (knows_ext t ps (Prop.extent t.u b)) (Prop.extent t.u b)

  let s5_positive_introspection t ps b =
    let k = knows_ext t ps (Prop.extent t.u b) in
    Bitset.equal (knows_ext t ps k) k

  let s5_negative_introspection t ps b =
    let nk = Bitset.complement (knows_ext t ps (Prop.extent t.u b)) in
    Bitset.equal (knows_ext t ps nk) nk

  let conjunction t ps a b =
    Bitset.equal
      (Bitset.inter
         (knows_ext t ps (Prop.extent t.u a))
         (knows_ext t ps (Prop.extent t.u b)))
      (knows_ext t ps (Prop.extent t.u (Prop.and_ a b)))

  let full_coincides u ps b =
    let t = make u full in
    Bitset.equal
      (knows_ext t ps (Prop.extent u b))
      (Knowledge.knows_ext u ps (Prop.extent u b))

  let refines fine coarse =
    (* same universe; every fine per-process class sits inside one
       coarse class *)
    Universe.size fine.u = Universe.size coarse.u
    && Array.for_all2
         (fun fids cids ->
           let size = Array.length fids in
           let map : (int, int) Hashtbl.t = Hashtbl.create size in
           let ok = ref true in
           for i = 0 to size - 1 do
             match Hashtbl.find_opt map fids.(i) with
             | None -> Hashtbl.add map fids.(i) cids.(i)
             | Some c -> if c <> cids.(i) then ok := false
           done;
           !ok)
         fine.ids_by_pid coarse.ids_by_pid

  let coarser_knows_less fine coarse ps b =
    (not (refines fine coarse))
    || Bitset.subset
         (knows_ext coarse ps (Prop.extent coarse.u b))
         (knows_ext fine ps (Prop.extent fine.u b))
end
