(** Process chains (§3.1).

    A computation [z] has a process chain [<P0 P1 … Pn>] when there are
    events [e0 ⤳ e1 ⤳ … ⤳ en] (not necessarily distinct) with [ei] on
    [Pi]. "[z] has a chain in [(x,z)]" restricts all the [ei] to the
    suffix after the prefix [x], with causality taken in [z].

    Chains are the operational face of isomorphism: Theorem 1 says
    information about [P1 … Pn] flows from [x] to [z] either not at all
    (isomorphism) or along such a chain. *)

val find :
  n:int -> ?x:Trace.t -> z:Trace.t -> Pset.t list -> Event.t list option
(** [find ~n ~x ~z psets] is a witness chain [e0; …; ek] in [(x, z)]
    for [psets = <P0 … Pk>], or [None]. [x] defaults to the empty
    computation (chain anywhere in [z]).
    Raises [Invalid_argument] if [psets] is empty or [x] is not a
    prefix of [z]. *)

val exists : n:int -> ?x:Trace.t -> z:Trace.t -> Pset.t list -> bool

val exists_ts : Causality.t -> start:int -> Pset.t list -> bool
(** Lower-level entry point reusing precomputed timestamps; [start] is
    the first suffix position. *)

val find_ts : Causality.t -> start:int -> Pset.t list -> int list option
(** Witness as positions. *)

val of_pids : Pid.t list -> Pset.t list
(** Convenience: a chain alphabet of singletons. *)

val exists_naive : n:int -> ?x:Trace.t -> z:Trace.t -> Pset.t list -> bool
(** Reference implementation via an explicit O(len²) transitive-closure
    matrix instead of vector-timestamp queries. Same answers as
    {!exists} (property-tested); kept for the P3 ablation bench. *)
