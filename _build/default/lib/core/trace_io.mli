(** Trace serialization.

    A line-oriented format so recorded runs can be saved, shipped, and
    re-analyzed (the CLI's [dump]/[analyze] commands):

    {v
    S <pid> <lseq> <dst> <seq> <payload>     send
    R <pid> <lseq> <src> <seq> <payload>     receive
    I <pid> <lseq> <tag>                     internal
    v}

    Payloads and tags are written with OCaml's [%S] escaping, so they
    may contain spaces and newlines. Parsing is total: [of_string]
    reports the offending line on failure. Round-tripping is
    property-tested against randomly generated computations. *)

val to_string : Trace.t -> string
val of_string : string -> (Trace.t, string) result
(** Parses; checks well-formedness. [Error] carries a line-numbered
    reason. *)

val save : string -> Trace.t -> unit
(** [save path z] writes the trace to a file. *)

val load : string -> (Trace.t, string) result
