(** Trace profiling.

    Summary metrics of a recorded computation, centered on the numbers
    the paper makes meaningful:

    - {b causal depth} — the longest happened-before chain. By
      Theorem 5 this bounds the deepest nested knowledge any process
      can have gained during the run, and it is the run's critical
      path: no scheduler can finish the same partial order in fewer
      sequential steps.
    - {b concurrency ratio} — the fraction of event pairs that are
      causally unordered: 0 for a pure relay chain, approaching 1 for
      independent processes. The width of the cut lattice grows with
      it (E14).
    - counts per kind / process / payload tag, for orientation. *)

type t = {
  events : int;
  sends : int;
  receives : int;
  internals : int;
  per_process : (int * int) list;  (** (pid, events) sorted by pid *)
  by_tag : (string * int) list;  (** message payload tag → sends *)
  in_flight_at_end : int;
  causal_depth : int;  (** longest ⤳-chain (0 for the empty trace) *)
  concurrency_ratio : float;  (** unordered pairs / all pairs; 0 if < 2 events *)
}

val compute : n:int -> Trace.t -> t
val pp : Format.formatter -> t -> unit

val critical_path : n:int -> Trace.t -> Event.t list
(** A longest happened-before chain, as events in causal order. *)
