(** Knowledge predicates (§4.1).

    [(P knows b) at x ≡ ∀y. x \[P\] y ⇒ b at y]: [P] knows [b] when [b]
    holds at every computation [P] cannot distinguish from the actual
    one. Over a bounded universe the quantifier is effective: [knows]
    is a class-wise AND over the [\[P\]]-partition, computed in
    O(universe) per application and returned as an ordinary predicate,
    so nesting ([P knows Q knows b]) is function composition.

    The {!Laws} submodule makes the paper's twelve knowledge facts and
    Lemma 2 decidable; tests and bench E6 drive them over random
    universes and predicates. *)

val knows_ext : Universe.t -> Pset.t -> Bitset.t -> Bitset.t
(** Extensional core: indices whose whole [\[P\]]-class lies in the
    given extent. *)

val knows_ext_naive : Universe.t -> Pset.t -> Bitset.t -> Bitset.t
(** Reference implementation scanning all pairs with the trace-level
    [\[P\]] test — O(size² · |P| · len) against {!knows_ext}'s
    O(size). Same answers (property-tested); kept for the P1 ablation
    bench. *)

val knows : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [knows u p b] is the predicate "[P] knows [b]". Evaluating it at a
    computation outside [u] raises [Not_found]. *)

val knows_p : Universe.t -> Pid.t -> Prop.t -> Prop.t
(** Single-process convenience. *)

val nested : Universe.t -> Pset.t list -> Prop.t -> Prop.t
(** [nested u \[P1;…;Pn\] b] is "[P1] knows [P2] knows … [Pn] knows
    [b]"; with the empty list it is [b] itself. *)

val holds_at : Universe.t -> Prop.t -> Trace.t -> bool
(** [holds_at u b x] evaluates [b] at [x] ("b at x"). *)

val sure : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [(P sure b) at x ≡ (P knows b) at x ∨ (P knows ¬b) at x] (§4.2). *)

val unsure : Universe.t -> Pset.t -> Prop.t -> Prop.t
(** [¬ (P sure b)]. *)

(** The paper's facts about knowledge, each decided over the whole
    universe for given [P], [Q], [b], [b']. Numbering follows §4.1. *)
module Laws : sig
  val fact1_class_invariant : Universe.t -> Pset.t -> Prop.t -> bool
  (** (1)+(2): the extent of [P knows b] is a union of [\[P\]]-classes. *)

  val fact3_monotone_union : Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
  (** (3) [(P knows b) ⇒ (P ∪ Q knows b)]. *)

  val fact4_veridical : Universe.t -> Pset.t -> Prop.t -> bool
  (** (4) [(P knows b) ⇒ b]. *)

  val fact5_total : Universe.t -> Pset.t -> Prop.t -> bool
  (** (5) [(P knows b) ∨ ¬(P knows b)] — totality. *)

  val fact6_conjunction : Universe.t -> Pset.t -> Prop.t -> Prop.t -> bool
  (** (6) [(P knows b) ∧ (P knows b') = P knows (b ∧ b')]. *)

  val fact7_disjunction : Universe.t -> Pset.t -> Prop.t -> Prop.t -> bool
  (** (7) [(P knows b) ∨ (P knows b') ⇒ P knows (b ∨ b')]. *)

  val fact8_consistency : Universe.t -> Pset.t -> Prop.t -> bool
  (** (8) [(P knows ¬b) ⇒ ¬(P knows b)]. *)

  val fact9_closure : Universe.t -> Pset.t -> Prop.t -> Prop.t -> bool
  (** (9) [(P knows b) ∧ (b ⇒ b') ⇒ (P knows b')], premise read as
      [b ⇒ b'] valid on the universe. *)

  val fact10_positive_introspection : Universe.t -> Pset.t -> Prop.t -> bool
  (** (10) [P knows P knows b = P knows b]. *)

  val fact11_negative_introspection : Universe.t -> Pset.t -> Prop.t -> bool
  (** (11, Lemma 2) [P knows ¬(P knows b) = ¬(P knows b)]. *)

  val fact12_constants : Universe.t -> Pset.t -> bool -> bool
  (** (12) [P knows c] for constant [c = true]; for [c = false] it
      fails everywhere (classes are nonempty). *)
end
