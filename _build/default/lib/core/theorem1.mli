(** The Fundamental Theorem of Process Chains (Theorem 1, §3.2).

    For a computation [z], a prefix [x] of [z] and process sets
    [P1 … Pn] (n ≥ 1):

    {v x [P1 P2 … Pn] z   or   there is a chain <P1 P2 … Pn> in (x,z) v}

    This module decides both disjuncts on a bounded universe and
    reports which hold — the test-suite and bench E3 drive it over
    random instances and assert the dichotomy (in the contrapositive
    form: no isomorphism ⇒ a chain witness exists). *)

type verdict = {
  iso : bool;  (** [x \[P1…Pn\] z] within the universe *)
  chain : Event.t list option;  (** a witness chain, if one exists *)
}

val check : Universe.t -> x:Trace.t -> z:Trace.t -> Pset.t list -> verdict
(** Raises [Invalid_argument] if [x] is not a prefix of [z] or the
    process-set list is empty; raises [Not_found] if [x] or [z] lies
    outside the universe. *)

val dichotomy_holds : Universe.t -> x:Trace.t -> z:Trace.t -> Pset.t list -> bool
(** At least one disjunct holds. *)
