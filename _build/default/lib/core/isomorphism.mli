(** The isomorphism relation [x \[P\] y] (§3).

    [x \[p\] y] holds iff process [p]'s computation is the same in [x]
    and [y] — [p] cannot distinguish the two system computations.
    [x \[P\] y] holds iff it holds for every [p ∈ P]. These are
    equivalence relations; {!module:Relations} composes them into
    [\[P1 P2 … Pn\]].

    Trace-level tests work on any pair of traces; universe-level
    queries use the precomputed projection partitions and are O(1)
    after the first query for a given [P]. *)

val iso_p : Trace.t -> Trace.t -> Pid.t -> bool
(** [iso_p x y p] is [x \[p\] y]: [xp = yp]. *)

val iso : Trace.t -> Trace.t -> Pset.t -> bool
(** [iso x y ps] is [x \[P\] y]. [iso x y Pset.empty] is always true
    ([x \[{}\] y] for all x, y). *)

val related : Universe.t -> Pset.t -> int -> int -> bool
(** Universe-indexed [x \[P\] y]. *)

val class_of : Universe.t -> Pset.t -> int -> Bitset.t
(** All computations [P]-isomorphic to the given one. *)

val largest_label : Pset.t -> Trace.t -> Trace.t -> Pset.t
(** [largest_label all x y] is the largest [P ⊆ all] with [x \[P\] y] —
    the edge label of the isomorphism diagram. May be empty. *)

(** The ten algebraic properties of §3, as decidable checks over a
    universe. Each returns [true] when the law holds for the given
    instance; the test-suite and bench E2 drive them over many random
    instances. Numbering follows the paper. *)
module Laws : sig
  val equivalence : Universe.t -> Pset.t -> bool
  (** (1) [\[P\]] is reflexive, symmetric and transitive on the
      universe. *)

  val idempotence : Universe.t -> Pset.t -> int -> int -> bool
  (** (3) [\[P P\] = \[P\]] at the given pair. *)

  val reflexivity : Universe.t -> Pset.t list -> int -> bool
  (** (4) [x \[P1 … Pn\] x]. *)

  val inversion : Universe.t -> Pset.t list -> int -> int -> bool
  (** (5) [x \[P1…Pn\] y = y \[Pn…P1\] x]. *)

  val concatenation : Universe.t -> Pset.t list -> Pset.t list -> int -> int -> bool
  (** (6) [x \[α β\] z ⟺ ∃y. x \[α\] y ∧ y \[β\] z] — by construction of
      composition; checked extensionally. *)

  val union_inter : Universe.t -> Pset.t -> Pset.t -> int -> int -> bool
  (** (7) [\[P ∪ Q\] = \[P\] ∩ \[Q\]] at the given pair. *)

  val monotonicity : Universe.t -> Pset.t -> Pset.t -> int -> int -> bool
  (** (8) [Q ⊇ P ⇒ \[Q\] ⊆ \[P\]] at the given pair. *)

  val subsumption : Universe.t -> Pset.t -> Pset.t -> int -> int -> bool
  (** (10) [Q ⊇ P ⇒ \[Q P\] = \[P\] = \[P Q\]] at the given pair —
      composing with a finer relation collapses. *)

  val same_relation : Universe.t -> Pset.t -> Pset.t -> bool
  (** [\[P\] = \[Q\]] as relations on the universe (identical
      partitions). *)

  val substitution :
    Universe.t -> Pset.t list -> Pset.t -> Pset.t -> Pset.t list -> int -> int -> bool
  (** (2) [\[β\] = \[δ\] ⇒ \[α β γ\] = \[α δ γ\]] at the given pair
      (vacuously true when the premise fails). *)

  val extensionality : Universe.t -> Pset.t -> Pset.t -> bool
  (** (9) [(P = Q) = (\[P\] = \[Q\])]. The interesting direction
      requires the model's "every process has an event in some
      computation" clause (§2) — it can fail on universes whose depth
      is too small for some process to have acted, which the tests
      exhibit both ways. *)
end
