let find_ts ts ~start psets =
  if psets = [] then invalid_arg "Chain.find: empty chain";
  let len = Causality.length ts in
  let positions_on ps =
    let acc = ref [] in
    for i = len - 1 downto start do
      if Event.on (Causality.event_at ts i) ps then acc := i :: !acc
    done;
    !acc
  in
  match psets with
  | [] -> assert false
  | p0 :: rest ->
      (* frontier: positions reachable as the current chain element,
         with backpointers for witness extraction *)
      let init = List.map (fun i -> (i, [ i ])) (positions_on p0) in
      let step frontier ps =
        List.filter_map
          (fun j ->
            let rec pick = function
              | [] -> None
              | (i, path) :: tl ->
                  if Causality.hb ts i j then Some (j, j :: path) else pick tl
            in
            pick frontier)
          (positions_on ps)
      in
      let final = List.fold_left step init rest in
      (match final with
      | [] -> None
      | (_, path) :: _ -> Some (List.rev path))

let exists_ts ts ~start psets = find_ts ts ~start psets <> None

let find ~n ?(x = Trace.empty) ~z psets =
  if not (Trace.is_prefix x z) then invalid_arg "Chain.find: x not a prefix of z";
  let ts = Causality.compute ~n z in
  match find_ts ts ~start:(Trace.length x) psets with
  | None -> None
  | Some positions -> Some (List.map (Causality.event_at ts) positions)

let exists ~n ?(x = Trace.empty) ~z psets = find ~n ~x ~z psets <> None

let of_pids pids = List.map Pset.singleton pids

let exists_naive ~n:_ ?(x = Trace.empty) ~z psets =
  if psets = [] then invalid_arg "Chain.exists_naive: empty chain";
  if not (Trace.is_prefix x z) then
    invalid_arg "Chain.exists_naive: x not a prefix of z";
  let events = Array.of_list (Trace.to_list z) in
  let len = Array.length events in
  (* direct dependencies, then Floyd-Warshall-style closure *)
  let reach = Array.make_matrix len len false in
  for i = 0 to len - 1 do
    reach.(i).(i) <- true
  done;
  for j = 0 to len - 1 do
    for i = 0 to j - 1 do
      let e = events.(i) and e' = events.(j) in
      let direct =
        (Pid.equal e.Event.pid e'.Event.pid && e.Event.lseq <= e'.Event.lseq)
        ||
        match (e.Event.kind, e'.Event.kind) with
        | Event.Send m, Event.Receive m' -> Msg.equal m m'
        | _ -> false
      in
      if direct then reach.(i).(j) <- true
    done
  done;
  for k = 0 to len - 1 do
    for i = 0 to len - 1 do
      if reach.(i).(k) then
        for j = 0 to len - 1 do
          if reach.(k).(j) then reach.(i).(j) <- true
        done
    done
  done;
  let start = Trace.length x in
  let positions_on ps =
    List.filter
      (fun i -> i >= start && Event.on events.(i) ps)
      (List.init len (fun i -> i))
  in
  match psets with
  | [] -> assert false
  | p0 :: rest ->
      let frontier = ref (positions_on p0) in
      List.iter
        (fun ps ->
          frontier :=
            List.filter
              (fun j -> List.exists (fun i -> reach.(i).(j)) !frontier)
              (positions_on ps))
        rest;
      !frontier <> []
