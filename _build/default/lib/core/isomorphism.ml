let iso_p x y p = List.equal Event.equal (Trace.proj x p) (Trace.proj y p)
let iso x y ps = Pset.for_all (iso_p x y) ps

let related u ps i j =
  let ids = Universe.pset_class_ids u ps in
  ids.(i) = ids.(j)

let class_of u ps i = Universe.class_members u ps i

let largest_label all x y = Pset.filter (iso_p x y) all

module Laws = struct
  let equivalence u ps =
    let ids = Universe.pset_class_ids u ps in
    (* class ids are a partition by construction; verify against the
       trace-level definition on all pairs *)
    let ok = ref true in
    Universe.iter
      (fun i x ->
        Universe.iter
          (fun j y -> if (ids.(i) = ids.(j)) <> iso x y ps then ok := false)
          u)
      u;
    !ok

  let idempotence u ps i j =
    Relations.related u [ ps; ps ] i j = related u ps i j

  let reflexivity u pss i = Relations.related u pss i i

  let inversion u pss i j =
    Relations.related u pss i j = Relations.related u (List.rev pss) j i

  let concatenation u alpha beta i k =
    let via_both = Relations.related u (alpha @ beta) i k in
    let exists_mid =
      let mids = Relations.reachable u alpha i in
      Bitset.exists (fun j -> Relations.related u beta j k) mids
    in
    via_both = exists_mid

  let union_inter u p q i j =
    related u (Pset.union p q) i j = (related u p i j && related u q i j)

  let monotonicity u p q i j =
    (not (Pset.subset p q)) || not (related u q i j) || related u p i j

  let subsumption u q p i j =
    (not (Pset.subset p q))
    || Relations.related u [ q; p ] i j = related u p i j
       && Relations.related u [ p; q ] i j = related u p i j

  let same_relation u p q =
    let ip = Universe.pset_class_ids u p and iq = Universe.pset_class_ids u q in
    let ok = ref true in
    Array.iteri
      (fun i _ ->
        Array.iteri
          (fun j _ -> if ip.(i) = ip.(j) <> (iq.(i) = iq.(j)) then ok := false)
          ip)
      ip;
    !ok

  let substitution u alpha beta delta gamma i j =
    (not (same_relation u beta delta))
    || Relations.related u (alpha @ [ beta ] @ gamma) i j
       = Relations.related u (alpha @ [ delta ] @ gamma) i j

  let extensionality u p q = Pset.equal p q = same_relation u p q
end
