(** Happened-before causality (§3.1, after Lamport).

    For events [e], [e'] of a computation [z], [e ⤳ e'] iff they are on
    the same process with [e] no later, or [e] is the send of the
    message [e'] receives, or transitively so. We compute a vector
    timestamp per position once (O(len·n)) and answer [⤳] queries in
    O(1): with [vt e p] counting the events on [p] in [e]'s causal
    past, [e ⤳ e' ⟺ vt e' (proc e) ≥ lseq e + 1].

    The relation here is reflexive ([e ⤳ e]), as in the paper. *)

type t
(** Timestamps for one computation. *)

val compute : n:int -> Trace.t -> t
(** [compute ~n z] with [n] the number of processes in the system.
    Raises [Invalid_argument] if [z] is not well-formed. *)

val length : t -> int
val event_at : t -> int -> Event.t
val vt : t -> int -> int array
(** [vt t i] is the vector timestamp of position [i]; entry [p] is the
    number of events on [p] causally at-or-before position [i]. The
    returned array must not be mutated. *)

val hb : t -> int -> int -> bool
(** [hb t i j] is [e_i ⤳ e_j] (reflexive). *)

val position_of : t -> Event.t -> int option
(** Position of an event in the computation, by {!Event.equal}. *)

val concurrent : t -> int -> int -> bool
(** Neither [hb i j] nor [hb j i] — independent events. *)

val causal_past : t -> int -> int list
(** Positions causally at-or-before [i] (including [i]). *)
