(** An epistemic-temporal formula language.

    Concrete syntax for the paper's knowledge operators combined with
    branching time, so claims like the §4.1 token-bus assertion can be
    written down, parsed, and checked:

    {v AG (holds2 -> K p2 (K p1 (~holds0) & K p3 (~holds4))) v}

    Grammar (precedence low→high: [->], [|], [&], prefix):

    {v
    φ ::= 'true' | 'false' | atom
        | '~' φ | φ '&' φ | φ '|' φ | φ '->' φ
        | 'K' pset φ        knowledge        (paper §4.1)
        | 'sure' pset φ     sure             (paper §4.2)
        | 'E' pset φ        everyone knows
        | 'S' pset φ        someone knows
        | 'CK' φ            common knowledge (greatest fixpoint)
        | 'AG' φ | 'EF' φ | 'AF' φ | 'EG' φ | 'AX' φ | 'EX' φ
        | '(' φ ')'
    pset ::= pid | '{' pid (',' pid)* '}'        pid ::= 'p'? digits
    atom ::= identifier, resolved in the caller's environment
    v}

    Parsing is total ([Error] with position); evaluation needs a
    universe and an atom environment. The printer round-trips
    ([parse ∘ print = id] up to parentheses — property-tested). *)

type pset_syntax = int list

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Know of pset_syntax * t
  | Sure of pset_syntax * t
  | Everyone of pset_syntax * t
  | Someone of pset_syntax * t
  | Common of t
  | Ag of t
  | Ef of t
  | Af of t
  | Eg of t
  | Ax of t
  | Ex of t

val parse : string -> (t, string) result
val print : t -> string
val pp : Format.formatter -> t -> unit

val atoms : t -> string list
(** Distinct atom names, in order of first occurrence. *)

val eval :
  Universe.t -> env:(string -> Prop.t option) -> t -> (Prop.t, string) result
(** Compile to a predicate over the universe. [Error] names any unbound
    atom or a process id outside the system. Temporal operators use
    {!Temporal}'s finite-tree semantics. *)

val check :
  Universe.t ->
  env:(string -> Prop.t option) ->
  t ->
  ([ `Valid | `Fails_at of Trace.t ], string) result
(** Evaluate and test at every computation: [`Valid] or a witness
    computation where the formula fails. *)
