(** Isomorphism diagrams (§3, Figure 3-1).

    "An undirected labelled graph whose vertices are computations and
    there is an edge labelled [\[P\]] between vertices x, y if P is the
    largest set of processes for which x \[P\] y." Self-loops (always
    labelled [\[D\]]) are omitted from the edge list but reported by
    {!self_label}.

    Diagrams are intended for small computation sets — the whole
    universe of a toy system, or a hand-picked set of computations as
    in the paper's Example 1. *)

type t

val of_computations : all:Pset.t -> (string * Trace.t) list -> t
(** [of_computations ~all named] builds the diagram over the given
    named computations; [all] is the system's process set [D]. *)

val of_universe : ?max_size:int -> Universe.t -> t
(** Diagram over every computation of a universe (names are indices).
    Raises [Invalid_argument] if the universe exceeds [max_size]
    (default 200) — diagrams are quadratic. *)

type labelled_edge = { x : string; y : string; label : Pset.t }

val edges : t -> labelled_edge list
(** Edges with a non-empty largest label, each unordered pair once. *)

val label : t -> string -> string -> Pset.t option
(** [label d nx ny] is the largest [P] with [x \[P\] y], [None] when no
    process relates them (the paper still draws no edge then; indirect
    relationships go through intermediate vertices). Raises
    [Invalid_argument] for unknown names. *)

val self_label : t -> Pset.t
(** The label of every self-loop: [D]. *)

val vertices : t -> string list

val computation : t -> string -> Trace.t
(** The computation behind a vertex name. Raises [Invalid_argument] for
    unknown names. *)

val to_dot : t -> string
(** Graphviz rendering with computations as vertices and largest-label
    edges, matching Figure 3-1's presentation. *)

val pp : Format.formatter -> t -> unit
