type gain_report = { premise : bool; chain : Event.t list option }
type loss_report = { premise : bool; chain : Event.t list option }

let last_pset psets =
  match List.rev psets with
  | [] -> invalid_arg "Transfer: empty process-set list"
  | pn :: _ -> pn

let nested_at u psets b x = Prop.eval (Knowledge.nested u psets b) x
let knows_at u ps b x = Prop.eval (Knowledge.knows u ps b) x

let theorem4 u psets b ~x ~y =
  let pn = last_pset psets in
  let premise =
    nested_at u psets b x
    && Relations.related u psets (Universe.find_exn u x) (Universe.find_exn u y)
  in
  (not premise) || knows_at u pn b y

(* The paper says Theorem 4 "holds with knows replaced by sure". The
   literal replacement of every level is false: at a computation where
   P1 *knows* that P2 is unsure, "P1 sure (P2 sure b)" holds via the
   negative branch while P2 stays unsure (see transfer_tests for the
   concrete counterexample). The sound — and used in §5 — reading keeps
   the outer levels as knowledge and replaces the innermost:
   P1 knows … P(n-1) knows (Pn sure b). *)
let theorem4_sure u psets b ~x ~y =
  let pn = last_pset psets in
  let outer = List.filteri (fun i _ -> i < List.length psets - 1) psets in
  let premise =
    Prop.eval (Knowledge.nested u outer (Knowledge.sure u pn b)) x
    && Relations.related u psets (Universe.find_exn u x) (Universe.find_exn u y)
  in
  (not premise) || Prop.eval (Knowledge.sure u pn b) y

let gain_premise u psets b x y =
  let pn = last_pset psets in
  Trace.is_prefix x y
  && (not (knows_at u pn b x))
  && nested_at u psets b y

let explain_gain u psets b ~x ~y =
  let premise = gain_premise u psets b x y in
  let n = Spec.n (Universe.spec u) in
  let chain =
    if premise then Chain.find ~n ~x ~z:y (List.rev psets) else None
  in
  ({ premise; chain } : gain_report)

let theorem5_gain u psets b ~x ~y =
  let r = explain_gain u psets b ~x ~y in
  (not r.premise) || r.chain <> None

let loss_premise u psets b x y =
  let pn = last_pset psets in
  Trace.is_prefix x y
  && nested_at u psets b x
  && not (knows_at u pn b y)

let explain_loss u psets b ~x ~y =
  let premise = loss_premise u psets b x y in
  let n = Spec.n (Universe.spec u) in
  let chain = if premise then Chain.find ~n ~x ~z:y psets else None in
  ({ premise; chain } : loss_report)

let theorem6_loss u psets b ~x ~y =
  let r = explain_loss u psets b ~x ~y in
  (not r.premise) || r.chain <> None

module Lemma4 = struct
  let requires_locality u p b =
    let all = Spec.all (Universe.spec u) in
    Local_pred.is_local u (Pset.compl ~all p) b

  let clause u p b x e ~kind_ok ~implication =
    if not (Event.on e p) then true
    else if not (kind_ok e) then true
    else if not (requires_locality u p b) then true
    else
      let xe = Trace.snoc x e in
      match Universe.find u xe with
      | None -> true (* extension outside the universe: vacuous *)
      | Some _ -> implication (knows_at u p b x) (knows_at u p b xe)

  let receive_no_loss u ~p ~b ~x ~e =
    clause u p b x e ~kind_ok:Event.is_receive ~implication:(fun before after ->
        (not before) || after)

  let send_no_gain u ~p ~b ~x ~e =
    clause u p b x e ~kind_ok:Event.is_send ~implication:(fun before after ->
        (not after) || before)

  let internal_no_change u ~p ~b ~x ~e =
    clause u p b x e ~kind_ok:Event.is_internal ~implication:Bool.equal
end

let corollary_gain_receives u ~p ~b ~x ~y =
  let premise =
    Lemma4.requires_locality u p b && Trace.is_prefix x y
    && (not (knows_at u p b x))
    && knows_at u p b y
  in
  (not premise)
  || List.exists
       (fun e -> Event.on e p && Event.is_receive e)
       (Trace.suffix ~prefix:x y)

let corollary_loss_sends u ~p ~b ~x ~y =
  let premise =
    Lemma4.requires_locality u p b && Trace.is_prefix x y
    && knows_at u p b x
    && not (knows_at u p b y)
  in
  (not premise)
  || List.exists
       (fun e -> Event.on e p && Event.is_send e)
       (Trace.suffix ~prefix:x y)
