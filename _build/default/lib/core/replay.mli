(** Post-mortem exact analysis: a recorded run as a system.

    [spec_of_trace] turns one computation [z] into a specification
    whose process rules follow exactly their local computations in [z].
    The resulting system's computations are precisely the downward
    closed portions of [z]'s event partial order, in every interleaving
    — so the {e exact} knowledge engine can be pointed at a {e recorded}
    run: "given only what actually happened, what could each process
    have known, and when?"

    Two structural identities make this more than a convenience, and
    the tests verify both:

    - the canonical universe of the replay spec has exactly one
      computation per {e consistent cut} of [z] (a [\[D\]]-class of a
      fixed event set {e is} a consistent cut), so
      [Universe.size = Cut.count_consistent];
    - evaluating [possibly b] over the replay universe coincides with
      {!Detect.possibly} over the cut lattice.

    Knowledge over a replay universe is knowledge {e relative to the
    observed partial order} — an observer who knows the run's events
    but not their interleaving. It is coarser than ground truth and
    finer than the full protocol universe, which is exactly the
    epistemic state of a log analyst. *)

val spec_of_trace : n:int -> Trace.t -> Spec.t
(** Raises [Invalid_argument] if the trace is not well-formed. *)

val universe_of_trace : ?mode:Universe.mode -> n:int -> Trace.t -> Universe.t
(** [spec_of_trace] enumerated to depth [Trace.length z] — the complete
    replay universe (default mode [`Canonical]). *)

val knew_at :
  n:int -> Trace.t -> Pset.t -> Prop.t -> int option
(** [knew_at ~n z ps b]: the first position of [z] after which [P]
    knows [b] relative to the replay universe, if any — "when could the
    log analyst first conclude that P knew". *)
