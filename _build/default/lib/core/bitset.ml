(* 62 usable bits per word keeps the arithmetic comfortably inside
   OCaml's 63-bit native ints. *)
let bits = 62

type t = { n : int; words : int array }

let nwords n = (n + bits - 1) / bits
let create n = { n; words = Array.make (max 1 (nwords n)) 0 }

let mask_last n =
  let r = n mod bits in
  if r = 0 then -1 lsr 1 else (1 lsl r) - 1

let create_full n =
  let w = Array.make (max 1 (nwords n)) ((-1) lsr 1) in
  if n = 0 then w.(0) <- 0
  else begin
    (* clear the bits beyond [n] in every word up to full width *)
    Array.iteri
      (fun i _ ->
        let lo = i * bits in
        if lo >= n then w.(i) <- 0)
      w;
    let lastw = (n - 1) / bits in
    w.(lastw) <- w.(lastw) land mask_last n
  end;
  { n; words = w }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits) land (1 lsl (i mod bits)) <> 0

let add t i =
  check t i;
  t.words.(i / bits) <- t.words.(i / bits) lor (1 lsl (i mod bits))

let remove t i =
  check t i;
  t.words.(i / bits) <- t.words.(i / bits) land lnot (1 lsl (i mod bits))

let copy t = { n = t.n; words = Array.copy t.words }

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_domain a b =
  if a.n <> b.n then invalid_arg "Bitset: domain mismatch"

let equal a b =
  same_domain a b;
  Array.for_all2 (fun x y -> x = y) a.words b.words

let subset a b =
  same_domain a b;
  Array.for_all2 (fun x y -> x land lnot y = 0) a.words b.words

let map2 f a b =
  same_domain a b;
  { n = a.n; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement a =
  let full = create_full a.n in
  diff full a

let inter_into a b =
  same_domain a b;
  Array.iteri (fun i w -> a.words.(i) <- a.words.(i) land w) b.words

let union_into a b =
  same_domain a b;
  Array.iteri (fun i w -> a.words.(i) <- a.words.(i) lor w) b.words

let of_pred n f =
  let t = create n in
  for i = 0 to n - 1 do
    if f i then add t i
  done;
  t

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / bits) land (1 lsl (i mod bits)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let for_all f t =
  let exception Stop in
  try
    iter (fun i -> if not (f i) then raise Stop) t;
    true
  with Stop -> false

let exists f t =
  let exception Stop in
  try
    iter (fun i -> if f i then raise Stop) t;
    false
  with Stop -> true

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let choose t =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_int)
    (to_list t)
