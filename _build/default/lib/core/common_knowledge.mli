(** Common knowledge (§4.2).

    [b is common knowledge] is the greatest fixpoint of
    [ck = b ∧ ⋀p (p knows ck)]: [b] holds, everyone knows it, everyone
    knows everyone knows it, and so on. The paper's corollary to
    Lemma 3: in a system with more than one process, common knowledge
    is {e constant} — it can be neither gained nor lost. Bench E7
    exhibits this on concrete systems. *)

val common_ext : Universe.t -> Bitset.t -> Bitset.t
(** Greatest fixpoint, computed by iterating the (monotone, shrinking)
    operator to stability. *)

val common : Universe.t -> Prop.t -> Prop.t
(** ["b is common knowledge"] as a predicate. *)

val level : Universe.t -> int -> Prop.t -> Prop.t
(** [level u k b] is the depth-[k] approximation: [b] for [k = 0],
    [b ∧ ⋀p (p knows (level (k-1)))] otherwise. [common] is its limit. *)

val constancy_holds : Universe.t -> Prop.t -> bool
(** The corollary checker: with ≥ 2 processes, ["b is CK"] is constant
    over the universe. *)

val iterations_to_fixpoint : Universe.t -> Prop.t -> int
(** Number of operator applications until stability — a measure used by
    bench E7. *)
