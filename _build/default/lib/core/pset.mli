(** Sets of processes.

    Isomorphism ([x \[P\] y], §3) and knowledge ([P knows b], §4) are
    indexed by {e sets} of processes, so process sets are a first-class
    value here. The universe of discourse [D] (the set of all processes
    in the system) is always explicit: complementation ({!compl}) — the
    paper's [P̄ = D − P] — requires it. *)

type t

val empty : t
val singleton : Pid.t -> t
val of_list : Pid.t list -> t
val to_list : t -> Pid.t list

val add : Pid.t -> t -> t
val remove : Pid.t -> t -> t
val mem : Pid.t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset p q] is true iff [p ⊆ q]. *)

val disjoint : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val fold : (Pid.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Pid.t -> unit) -> t -> unit
val for_all : (Pid.t -> bool) -> t -> bool
val exists : (Pid.t -> bool) -> t -> bool
val filter : (Pid.t -> bool) -> t -> t

val all : int -> t
(** [all n] is the full process set [D] of a system with [n] processes,
    i.e. [{p0, ..., p(n-1)}]. *)

val compl : all:t -> t -> t
(** [compl ~all p] is [P̄ = all − p], the paper's complement notation. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
