type step = { event : Event.t; position : int; role : string }

type report = {
  subject : string;
  fact : string;
  gained : bool;
  steps : step list;
  narrative : string list;
}

let role_of e =
  match e.Event.kind with
  | Event.Receive m ->
      Printf.sprintf "receives %s from %s" m.Msg.payload (Pid.to_string m.Msg.src)
  | Event.Send m ->
      Printf.sprintf "sends %s to %s" m.Msg.payload (Pid.to_string m.Msg.dst)
  | Event.Internal tag -> Printf.sprintf "performs %s" tag

let build_steps y events =
  let indexed = List.mapi (fun i e -> (i, e)) (Trace.to_list y) in
  List.map
    (fun e ->
      let position =
        match List.find_opt (fun (_, e') -> Event.equal e e') indexed with
        | Some (i, _) -> i
        | None -> -1
      in
      { event = e; position; role = role_of e })
    events

let narrate subject fact gained steps =
  let dir = if gained then "learned" else "lost" in
  let headline =
    Printf.sprintf "%s %s \"%s\" through %d event(s):" subject dir fact
      (List.length steps)
  in
  headline
  :: List.map
       (fun s ->
         Printf.sprintf "  [%d] %s %s" s.position
           (Pid.to_string s.event.Event.pid)
           s.role)
       steps

let gain u psets b ~x ~y =
  let r = Transfer.explain_gain u psets b ~x ~y in
  if not r.Transfer.premise then None
  else
    match r.Transfer.chain with
    | None -> None
    | Some events ->
        let subject =
          Format.asprintf "%a"
            (Format.pp_print_list
               ~pp_sep:(fun f () -> Format.pp_print_string f " knows ")
               (fun f ps -> Format.fprintf f "%a" Pset.pp ps))
            psets
        in
        let steps = build_steps y events in
        Some
          {
            subject;
            fact = Prop.name b;
            gained = true;
            steps;
            narrative = narrate subject (Prop.name b) true steps;
          }

let loss u psets b ~x ~y =
  let r = Transfer.explain_loss u psets b ~x ~y in
  if not r.Transfer.premise then None
  else
    match r.Transfer.chain with
    | None -> None
    | Some events ->
        let subject =
          Format.asprintf "%a"
            (Format.pp_print_list
               ~pp_sep:(fun f () -> Format.pp_print_string f " knows ")
               (fun f ps -> Format.fprintf f "%a" Pset.pp ps))
            psets
        in
        let steps = build_steps y events in
        Some
          {
            subject;
            fact = Prop.name b;
            gained = false;
            steps;
            narrative = narrate subject (Prop.name b) false steps;
          }

let learning_moments u ps b z =
  let k = Knowledge.knows u ps b in
  let events = Trace.to_list z in
  let rec go prefix i value acc = function
    | [] -> List.rev acc
    | e :: rest ->
        let prefix = Trace.snoc prefix e in
        let value' =
          match Universe.find u prefix with
          | Some _ -> Prop.eval k prefix
          | None -> value (* beyond the universe: stop reporting *)
        in
        let acc = if value' <> value then (i, value') :: acc else acc in
        go prefix (i + 1) value' acc rest
  in
  let initial = Prop.eval k Trace.empty in
  go Trace.empty 0 initial [] events

let pp fmt r =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    r.narrative

let pp_moments fmt z moments =
  let events = Array.of_list (Trace.to_list z) in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (i, gained) ->
      let e = events.(i) in
      Format.fprintf fmt "at event %d (%a): knowledge %s%s@," i Event.pp e
        (if gained then "gained" else "lost")
        (match (gained, e.Event.kind) with
        | true, Event.Receive _ -> "  — by receiving, as Lemma 4 predicts"
        | false, Event.Send _ -> "  — by sending, as Lemma 4 predicts"
        | _ -> ""))
    moments;
  Format.fprintf fmt "@]"
