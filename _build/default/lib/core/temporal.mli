(** Branching-time properties of computation universes.

    A bounded universe is a prefix tree: each computation's successors
    are its one-event extensions within the universe. CTL over that
    tree makes statements like "whenever r holds the token, r knows …"
    ([ag (implies r_holds assertion)]) or "knowledge, once gained, is
    kept unless the knower sends" directly checkable — the temporal
    glue the paper leaves implicit when it says "and later, p knows…".

    Semantics note: leaves (computations with no extension inside the
    universe) have no successors; [ax φ] is vacuously true there and
    [ex φ] false, the standard finite-tree reading. For systems that
    terminate within the depth bound the semantics is exact; otherwise
    the horizon behaves like livelock at the frontier — the same
    caveat as for knowledge quantifiers (DESIGN.md). *)

type t

val atom : Prop.t -> t
val tt : t
val ff : t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t

val ex : t -> t
(** Some one-event extension satisfies φ. *)

val ax : t -> t
(** Every one-event extension satisfies φ. *)

val ef : t -> t
(** Some reachable extension (reflexive) satisfies φ. *)

val af : t -> t
(** Every maximal path hits φ (reflexive). *)

val eg : t -> t
(** Some maximal path satisfies φ everywhere. *)

val ag : t -> t
(** All reachable extensions satisfy φ — invariants. *)

val eu : t -> t -> t
(** E[φ U ψ]. *)

val au : t -> t -> t
(** A[φ U ψ]. *)

val check : Universe.t -> t -> Bitset.t
(** The set of computations satisfying the formula (extensional, like
    {!Prop.extent}); memoize externally if evaluating many formulas. *)

val holds_at : Universe.t -> t -> Trace.t -> bool
(** Satisfaction at one computation. Raises [Not_found] outside the
    universe. *)

val valid : Universe.t -> t -> bool
(** Holds at every computation. *)

val holds_initially : Universe.t -> t -> bool
(** Holds at the empty computation. *)

val pp : Format.formatter -> t -> unit
