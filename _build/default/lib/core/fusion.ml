let ( let* ) = Result.bind

let require cond reason = if cond then Ok () else Error reason

let lemma1 ~all ~x ~y ~z ~p ~q =
  let* () = require (Trace.is_prefix x y) "x not a prefix of y" in
  let* () = require (Trace.is_prefix x z) "x not a prefix of z" in
  let* () = require (Pset.equal (Pset.union p q) all) "P ∪ Q ≠ D" in
  let* () = require (Isomorphism.iso x y p) "¬ x [P] y" in
  let* () = require (Isomorphism.iso x z q) "¬ x [Q] z" in
  let w = Trace.append (Trace.append x (Trace.suffix ~prefix:x y)) (Trace.suffix ~prefix:x z) in
  let* () =
    require (Trace.well_formed w) "fusion is not a computation (unexpected)"
  in
  Ok w

let verify_lemma1 ~all:_ ~x ~y ~z ~p ~q ~w =
  Trace.is_prefix x w && Trace.well_formed w && Isomorphism.iso y w q
  && Isomorphism.iso z w p

let theorem2 ~all ~n ~x ~y ~z ~p =
  let pbar = Pset.compl ~all p in
  let* () = require (Trace.is_prefix x y) "x not a prefix of y" in
  let* () = require (Trace.is_prefix x z) "x not a prefix of z" in
  let* () =
    require
      (not (Chain.exists ~n ~x ~z:y [ pbar; p ]))
      "chain <P̄ P> in (x,y)"
  in
  let* () =
    require (not (Chain.exists ~n ~x ~z [ p; pbar ])) "chain <P P̄> in (x,z)"
  in
  let on_p = List.filter (fun e -> Event.on e p) (Trace.suffix ~prefix:x y) in
  let on_pbar = List.filter (fun e -> Event.on e pbar) (Trace.suffix ~prefix:x z) in
  let w = Trace.append (Trace.append x on_p) on_pbar in
  let* () =
    require (Trace.well_formed w) "fusion is not a computation (unexpected)"
  in
  Ok w

let verify_theorem2 ~all ~x ~y ~z ~p ~w =
  let pbar = Pset.compl ~all p in
  Trace.is_prefix x w && Trace.well_formed w && Isomorphism.iso y w p
  && Isomorphism.iso z w pbar

let fuse_many ~all ~n ~x parts =
  let psets = List.map fst parts in
  let* () =
    require
      (Pset.equal all (List.fold_left Pset.union Pset.empty psets))
      "parts do not cover D"
  in
  let* () =
    let rec pairwise_disjoint = function
      | [] -> true
      | ps :: rest ->
          List.for_all (Pset.disjoint ps) rest && pairwise_disjoint rest
    in
    require (pairwise_disjoint psets) "parts overlap"
  in
  let* () =
    List.fold_left
      (fun acc (pi, yi) ->
        let* () = acc in
        let* () =
          require (Trace.is_prefix x yi)
            (Format.asprintf "x not a prefix of the %a part" Pset.pp pi)
        in
        require
          (not (Chain.exists ~n ~x ~z:yi [ Pset.compl ~all pi; pi ]))
          (Format.asprintf "chain <P̄ P> in (x, y_%a)" Pset.pp pi))
      (Ok ()) parts
  in
  let w =
    List.fold_left
      (fun acc (pi, yi) ->
        Trace.append acc
          (List.filter (fun e -> Event.on e pi) (Trace.suffix ~prefix:x yi)))
      x parts
  in
  let* () =
    require (Trace.well_formed w) "fusion is not a computation (unexpected)"
  in
  Ok w
