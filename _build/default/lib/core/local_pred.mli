(** Local predicates (§4.2).

    [b] is local to [P] iff [P] is always sure of [b]'s value — the
    value of [b] is controlled by [P]'s own actions. Local predicates
    are the paper's bridge between knowledge and protocol facts ("p
    holds the token" is local to p; "p has crashed" is local to p),
    and Lemma 3 — a predicate local to two disjoint sets is constant —
    is the engine behind the impossibility results (common knowledge
    constancy, failure detection, tracking). *)

val is_local : Universe.t -> Pset.t -> Prop.t -> bool
(** [is_local u ps b]: [∀x. (P sure b) at x]. *)

val lemma3_constant : Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
(** Lemma 3 checker: if [b] is local to [P] and to [Q] with [P], [Q]
    disjoint, then [b] is constant. Returns [true] when the implication
    holds (vacuously if the premise fails). *)

(** §4.2's eight facts about local predicates, decidable per
    instance. *)
module Facts : sig
  val fact1_iso_invariant : Universe.t -> Pset.t -> Prop.t -> bool
  (** (1) [b] local to [P] ∧ [x \[P\] y] ⇒ [b at x = b at y]. *)

  val fact2_known : Universe.t -> Pset.t -> Prop.t -> bool
  (** (2) [b] local to [P] ⇒ [b = P knows b]. *)

  val fact3_negation : Universe.t -> Pset.t -> Prop.t -> bool
  (** (3) [b] local to [P] ⟺ [¬b] local to [P]. *)

  val fact4_knowledge_collapse : Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
  (** (4) [b] local to [P] ⇒ [Q knows b = Q knows P knows b]. *)

  val fact5_knows_is_local : Universe.t -> Pset.t -> Prop.t -> bool
  (** (5) [(P knows b)] is local to [P]. *)

  val fact6_disjoint_constant : Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
  (** (6) = Lemma 3. *)

  val fact7_constants_local : Universe.t -> Pset.t -> bool -> bool
  (** (7) constants are local to every [P]. *)

  val fact8_sure_is_local : Universe.t -> Pset.t -> Prop.t -> bool
  (** (8) [(P sure b)] is local to [P]. *)
end

(** Identical-knowledge corollaries of Lemma 3. *)
val identical_knowledge_constant :
  Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
(** If [P], [Q] disjoint and [P knows b = Q knows b] (same extent),
    then [P knows b] is constant. *)

val identical_sure_constant : Universe.t -> Pset.t -> Pset.t -> Prop.t -> bool
(** Same with [sure] in place of [knows]. *)
