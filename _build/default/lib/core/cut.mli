(** Consistent cuts — global states of a computation.

    A cut of a computation [z] assigns each process a prefix length of
    its local computation; it is {e consistent} when no included
    receive's send is excluded. Consistent cuts are exactly the global
    states some observer could have seen: each corresponds to one
    [\[D\]]-class of prefixes of interleavings of [z] — the bridge
    between the paper's prefix-based quantifiers and the "global state"
    view its §6 sketches (and the object {!Hpl_protocols.Snapshot}
    records).

    Consistent cuts of a computation form a distributive lattice under
    pointwise min/meet and max/join; the lattice laws are checked by
    property tests. *)

type t
(** A cut: per-process local prefix lengths. *)

val of_counts : int array -> t
(** [of_counts \[|k0; …|\]]: the cut including the first [ki] events of
    each process [pi]. Raises [Invalid_argument] on negatives. *)

val counts : t -> int array
val n : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic; the lattice order is {!leq}. *)

val leq : t -> t -> bool
(** Pointwise order: [c ≤ c'] iff every process saw no more in [c]. *)

val bottom : n:int -> t
(** The empty cut. *)

val top : of_:Trace.t -> n:int -> t
(** The full cut of a computation. *)

val join : t -> t -> t
(** Pointwise max. Consistent cuts are closed under join. *)

val meet : t -> t -> t
(** Pointwise min. Consistent cuts are closed under meet. *)

val consistent : n:int -> Trace.t -> t -> bool
(** No message received inside the cut was sent outside it, and every
    count is within the process's local length. *)

val of_prefix : n:int -> Trace.t -> t
(** The cut induced by a prefix (always consistent as a cut of any
    extension of that prefix). *)

val events : Trace.t -> t -> Event.t list
(** The events inside the cut, in [z]'s order. *)

val sub_computation : Trace.t -> t -> Trace.t
(** The events inside a consistent cut as a computation (in [z]'s
    order); well-formed iff the cut is consistent. *)

val all_consistent : n:int -> Trace.t -> t list
(** Every consistent cut of [z], in lexicographic order. Exponential in
    general — intended for analysis of small runs. *)

val count_consistent : n:int -> Trace.t -> int
(** [List.length (all_consistent …)] without materializing. *)

val pp : Format.formatter -> t -> unit
