(** Human-readable explanations of knowledge changes — a "knowledge
    debugger" for recorded runs.

    The transfer theorems don't just bound what is possible, they name
    the mechanism: knowledge moved along a specific chain of events.
    This module packages the witness extraction of {!Transfer} and
    {!Chain} into narrated reports: {e who} learned {e what}, {e when},
    and {e through which messages} — the kind of answer one wants when
    debugging a distributed trace ("how did the replica find out?").

    Reports are plain data plus a pretty-printer; nothing here adds
    semantics beyond §4.3. *)

type step = {
  event : Event.t;
  position : int;  (** index in the later computation *)
  role : string;  (** e.g. "receive carrying the fact", "relay send" *)
}

type report = {
  subject : string;  (** the learning process set, printed *)
  fact : string;  (** the predicate learned *)
  gained : bool;  (** gain (or loss when false) *)
  steps : step list;  (** the chain, in causal order *)
  narrative : string list;  (** one line per step, human-oriented *)
}

val gain :
  Universe.t ->
  Pset.t list ->
  Prop.t ->
  x:Trace.t ->
  y:Trace.t ->
  report option
(** [gain u \[P1;…;Pn\] b ~x ~y]: if the nested knowledge was gained
    between [x] and [y], the chain that carried it, narrated. [None]
    when the premise does not hold (no gain to explain). *)

val loss :
  Universe.t ->
  Pset.t list ->
  Prop.t ->
  x:Trace.t ->
  y:Trace.t ->
  report option

val learning_moments :
  Universe.t -> Pset.t -> Prop.t -> Trace.t -> (int * bool) list
(** Replay a computation and list every position at which [P knows b]
    changes value ([true] = gained). The §4.3 corollaries predict the
    event kinds at those positions: gains of remote-local facts happen
    at receives, losses at sends — which {!pp_moments} annotates. *)

val pp : Format.formatter -> report -> unit

val pp_moments :
  Format.formatter -> Trace.t -> (int * bool) list -> unit
