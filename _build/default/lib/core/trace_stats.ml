type t = {
  events : int;
  sends : int;
  receives : int;
  internals : int;
  per_process : (int * int) list;
  by_tag : (string * int) list;
  in_flight_at_end : int;
  causal_depth : int;
  concurrency_ratio : float;
}

let tag_of payload =
  match String.index_opt payload ':' with
  | Some i -> String.sub payload 0 i
  | None -> payload

(* longest chain via DP over positions in trace order: depth(j) =
   1 + max over direct predecessors; direct preds suffice because the
   trace order is a linear extension *)
let depths ts =
  let len = Causality.length ts in
  let depth = Array.make len 1 in
  let back = Array.make len (-1) in
  for j = 0 to len - 1 do
    for i = 0 to j - 1 do
      if Causality.hb ts i j && depth.(i) + 1 > depth.(j) then begin
        depth.(j) <- depth.(i) + 1;
        back.(j) <- i
      end
    done
  done;
  (depth, back)

let critical_path ~n z =
  if Trace.is_empty z then []
  else begin
    let ts = Causality.compute ~n z in
    let depth, back = depths ts in
    let best = ref 0 in
    Array.iteri (fun j d -> if d > depth.(!best) then best := j) depth;
    let rec walk j acc =
      let acc = Causality.event_at ts j :: acc in
      if back.(j) < 0 then acc else walk back.(j) acc
    in
    walk !best []
  end

let compute ~n z =
  let events = Trace.to_list z in
  let count p = List.length (List.filter p events) in
  let sends = count Event.is_send in
  let receives = count Event.is_receive in
  let internals = count Event.is_internal in
  let per_process =
    List.init n (fun i -> (i, Trace.local_length z (Pid.of_int i)))
    |> List.filter (fun (_, c) -> c > 0)
  in
  let by_tag =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun m ->
        let t = tag_of m.Msg.payload in
        Hashtbl.replace tbl t (1 + Option.value ~default:0 (Hashtbl.find_opt tbl t)))
      (Trace.sent z);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let len = List.length events in
  let causal_depth, concurrency_ratio =
    if len = 0 then (0, 0.0)
    else begin
      let ts = Causality.compute ~n z in
      let depth, _ = depths ts in
      let max_depth = Array.fold_left max 1 depth in
      let unordered = ref 0 in
      for i = 0 to len - 1 do
        for j = i + 1 to len - 1 do
          if Causality.concurrent ts i j then incr unordered
        done
      done;
      let pairs = len * (len - 1) / 2 in
      ( max_depth,
        if pairs = 0 then 0.0 else float_of_int !unordered /. float_of_int pairs )
    end
  in
  {
    events = len;
    sends;
    receives;
    internals;
    per_process;
    by_tag;
    in_flight_at_end = List.length (Trace.in_flight z);
    causal_depth;
    concurrency_ratio;
  }

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "events:            %d (%d sends, %d receives, %d internal)@,"
    s.events s.sends s.receives s.internals;
  List.iter
    (fun (p, c) -> Format.fprintf fmt "  p%d: %d events@," p c)
    s.per_process;
  List.iter
    (fun (tag, c) -> Format.fprintf fmt "  tag %-12s %d messages@," tag c)
    s.by_tag;
  Format.fprintf fmt "in flight at end:  %d@," s.in_flight_at_end;
  Format.fprintf fmt "causal depth:      %d@," s.causal_depth;
  Format.fprintf fmt "concurrency ratio: %.2f@," s.concurrency_ratio;
  Format.fprintf fmt "@]"
