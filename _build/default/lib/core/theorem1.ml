type verdict = { iso : bool; chain : Event.t list option }

let check u ~x ~z psets =
  if psets = [] then invalid_arg "Theorem1.check: empty process-set list";
  if not (Trace.is_prefix x z) then invalid_arg "Theorem1.check: x not a prefix";
  let n = Spec.n (Universe.spec u) in
  let iso =
    Relations.related u psets (Universe.find_exn u x) (Universe.find_exn u z)
  in
  let chain = Chain.find ~n ~x ~z psets in
  { iso; chain }

let dichotomy_holds u ~x ~z psets =
  let v = check u ~x ~z psets in
  v.iso || v.chain <> None
