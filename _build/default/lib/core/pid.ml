type t = int

let names : (int, string) Hashtbl.t = Hashtbl.create 16

let of_int i =
  if i < 0 then invalid_arg "Pid.of_int: negative index";
  i

let to_int p = p
let equal = Int.equal
let compare = Int.compare
let hash p = p

let set_name p n = Hashtbl.replace names p n
let name p = Hashtbl.find_opt names p

let to_string p =
  match name p with
  | Some n -> n
  | None -> "p" ^ string_of_int p

let pp fmt p = Format.pp_print_string fmt (to_string p)
