type labelled_edge = { x : string; y : string; label : Pset.t }

type t = {
  all : Pset.t;
  named : (string * Trace.t) array;
  edge_list : labelled_edge list;
}

let build ~all named =
  let arr = Array.of_list named in
  let n = Array.length arr in
  let edge_list = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let nx, x = arr.(i) and ny, y = arr.(j) in
      let label = Isomorphism.largest_label all x y in
      if not (Pset.is_empty label) then
        edge_list := { x = nx; y = ny; label } :: !edge_list
    done
  done;
  { all; named = arr; edge_list = List.rev !edge_list }

let of_computations ~all named =
  let names = List.map fst named in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Iso_diagram.of_computations: duplicate names";
  build ~all named

let of_universe ?(max_size = 200) u =
  if Universe.size u > max_size then
    invalid_arg "Iso_diagram.of_universe: universe too large";
  let named =
    Universe.fold (fun i z acc -> (string_of_int i, z) :: acc) u []
    |> List.rev
  in
  build ~all:(Spec.all (Universe.spec u)) named

let edges d = d.edge_list

let find d name =
  match Array.find_opt (fun (n, _) -> String.equal n name) d.named with
  | Some (_, z) -> z
  | None -> invalid_arg ("Iso_diagram: unknown vertex " ^ name)

let label d nx ny =
  let x = find d nx and y = find d ny in
  let l = Isomorphism.largest_label d.all x y in
  if Pset.is_empty l then None else Some l

let self_label d = d.all
let vertices d = Array.to_list (Array.map fst d.named)
let computation = find

let to_dot d =
  let nodes =
    Array.to_list
      (Array.map
         (fun (n, _) -> { Dot.id = n; label = n; shape = Some "circle" })
         d.named)
  in
  let edges =
    List.map
      (fun e ->
        {
          Dot.src = e.x;
          dst = e.y;
          label = Format.asprintf "[%a]" Pset.pp e.label;
          directed = false;
        })
      d.edge_list
  in
  Dot.graph ~name:"isomorphism" ~directed:false nodes edges

let pp fmt d =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf fmt "%s -- %s : [%a]@," e.x e.y Pset.pp e.label)
    d.edge_list;
  Format.fprintf fmt "@]"
