(** Composed isomorphism relations [\[P1 P2 … Pn\]] (§3).

    [x \[P1 … Pn\] z] iff there are computations [y0 = x, y1, …, yn = z]
    with [y(i-1) \[Pi\] yi] — a path in the isomorphism diagram whose
    edge labels contain [P1, …, Pn] in order. This is relational
    composition [\[P1\] ∘ ⋯ ∘ \[Pn\]].

    Within a bounded universe the intermediate computations range over
    the universe; DESIGN.md §2 discusses why this is exact for the
    bounded systems we enumerate. *)

val reachable : Universe.t -> Pset.t list -> int -> Bitset.t
(** [reachable u \[P1;…;Pn\] x] is [{z | x \[P1…Pn\] z}], computed by
    iterated class saturation — O(size·n). For the empty list it is
    [{x}] (the identity relation). *)

val related : Universe.t -> Pset.t list -> int -> int -> bool
(** [related u pss x z] is [x \[P1 … Pn\] z]. *)

val related_traces : Universe.t -> Pset.t list -> Trace.t -> Trace.t -> bool
(** Trace-level wrapper: locates both traces in the universe first.
    @raise Not_found if either lies outside the universe. *)

val saturate : Universe.t -> Pset.t list -> Bitset.t -> Bitset.t
(** [saturate u pss s] extends {!reachable} to a set of sources. *)
