lib/core/relations.mli: Bitset Pset Trace Universe
