lib/core/transfer.mli: Event Prop Pset Trace Universe
