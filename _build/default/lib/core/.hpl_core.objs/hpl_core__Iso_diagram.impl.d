lib/core/iso_diagram.ml: Array Dot Format Isomorphism List Pset Spec String Trace Universe
