lib/core/causality.mli: Event Trace
