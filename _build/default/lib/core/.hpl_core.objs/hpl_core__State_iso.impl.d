lib/core/state_iso.ml: Array Bitset Event Format Hashtbl Knowledge List Msg Pid Printf Prop Pset Spec String Trace Universe
