lib/core/temporal.mli: Bitset Format Prop Trace Universe
