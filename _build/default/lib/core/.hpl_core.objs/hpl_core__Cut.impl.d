lib/core/cut.ml: Array Event Format Hashtbl Int List Msg Pid String Trace
