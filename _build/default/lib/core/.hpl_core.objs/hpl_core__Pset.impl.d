lib/core/pset.ml: Format Pid Set
