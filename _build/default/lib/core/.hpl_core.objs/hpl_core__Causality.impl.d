lib/core/causality.ml: Array Event Hashtbl Msg Pid Trace
