lib/core/chain.ml: Array Causality Event List Msg Pid Pset Trace
