lib/core/explain.ml: Array Event Format Knowledge List Msg Pid Printf Prop Pset Trace Transfer Universe
