lib/core/spec_algebra.mli: Pid Spec
