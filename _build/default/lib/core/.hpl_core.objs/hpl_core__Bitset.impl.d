lib/core/bitset.ml: Array Format List
