lib/core/replay.mli: Prop Pset Spec Trace Universe
