lib/core/cut.mli: Event Format Trace
