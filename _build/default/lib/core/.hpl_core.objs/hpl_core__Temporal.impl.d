lib/core/temporal.ml: Array Bitset Format Int List Prop Spec Trace Universe
