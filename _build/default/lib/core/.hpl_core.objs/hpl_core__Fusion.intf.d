lib/core/fusion.mli: Pset Trace
