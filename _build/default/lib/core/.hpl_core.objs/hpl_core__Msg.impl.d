lib/core/msg.ml: Format Hashtbl Int Pid String
