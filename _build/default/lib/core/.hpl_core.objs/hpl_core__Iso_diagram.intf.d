lib/core/iso_diagram.mli: Format Pset Trace Universe
