lib/core/msg.mli: Format Pid
