lib/core/transfer.ml: Bool Chain Event Knowledge List Local_pred Prop Pset Relations Spec Trace Universe
