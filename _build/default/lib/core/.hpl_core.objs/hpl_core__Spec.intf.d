lib/core/spec.mli: Event Msg Pid Pset Trace
