lib/core/formula.ml: Common_knowledge Format Group Hashtbl Knowledge List Pid Printf Prop Pset Result Spec String Temporal Universe
