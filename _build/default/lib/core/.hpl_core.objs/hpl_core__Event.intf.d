lib/core/event.mli: Format Msg Pid Pset
