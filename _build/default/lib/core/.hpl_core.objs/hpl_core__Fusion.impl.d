lib/core/fusion.ml: Chain Event Format Isomorphism List Pset Result Trace
