lib/core/bitset.mli: Format
