lib/core/knowledge.mli: Bitset Pid Prop Pset Trace Universe
