lib/core/formula.mli: Format Prop Trace Universe
