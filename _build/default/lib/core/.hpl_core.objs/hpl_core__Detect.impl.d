lib/core/detect.ml: Array Cut Hashtbl List
