lib/core/detect.mli: Cut Trace
