lib/core/pset.mli: Format Pid
