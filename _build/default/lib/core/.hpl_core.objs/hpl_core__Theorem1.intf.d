lib/core/theorem1.mli: Event Pset Trace Universe
