lib/core/explain.mli: Event Format Prop Pset Trace Universe
