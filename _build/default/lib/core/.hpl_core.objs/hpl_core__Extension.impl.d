lib/core/extension.ml: Bitset Event Isomorphism List Msg Pset Relations Spec Trace Universe
