lib/core/dot.mli:
