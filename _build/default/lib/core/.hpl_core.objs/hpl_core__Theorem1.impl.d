lib/core/theorem1.ml: Chain Event Relations Spec Trace Universe
