lib/core/trace_io.ml: Event Fun List Msg Pid Printf Scanf String Trace
