lib/core/replay.ml: Array Event Knowledge List Msg Pid Prop Spec Trace Universe
