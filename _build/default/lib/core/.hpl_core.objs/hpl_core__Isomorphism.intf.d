lib/core/isomorphism.mli: Bitset Pid Pset Trace Universe
