lib/core/common_knowledge.ml: Bitset Knowledge List Printf Prop Pset Spec Universe
