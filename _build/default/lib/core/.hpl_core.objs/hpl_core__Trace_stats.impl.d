lib/core/trace_stats.ml: Array Causality Event Format Hashtbl List Msg Option Pid String Trace
