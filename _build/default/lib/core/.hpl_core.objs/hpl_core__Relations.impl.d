lib/core/relations.ml: Array Bitset List Universe
