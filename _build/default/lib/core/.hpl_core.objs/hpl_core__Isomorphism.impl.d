lib/core/isomorphism.ml: Array Bitset Event List Pset Relations Trace Universe
