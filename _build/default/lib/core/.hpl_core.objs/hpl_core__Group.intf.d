lib/core/group.mli: Bitset Pid Prop Pset Universe
