lib/core/prop.ml: Array Bitset Bool Format Hashtbl List Printf Spec Trace Universe
