lib/core/spec_algebra.ml: Event List Msg Pid Spec
