lib/core/local_pred.ml: Array Bitset Knowledge Prop Pset Universe
