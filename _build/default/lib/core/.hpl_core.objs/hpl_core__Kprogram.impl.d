lib/core/kprogram.ml: Bitset Event Format Formula Hashtbl Knowledge List Pid Printf Prop Pset Spec Trace Universe
