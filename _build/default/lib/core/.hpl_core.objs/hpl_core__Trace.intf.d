lib/core/trace.mli: Event Format Msg Pid Pset
