lib/core/chain.mli: Causality Event Pid Pset Trace
