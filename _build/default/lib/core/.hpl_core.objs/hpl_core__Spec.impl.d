lib/core/spec.ml: Event List Msg Option Pid Printf Pset Trace
