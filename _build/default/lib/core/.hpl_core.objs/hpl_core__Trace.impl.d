lib/core/trace.ml: Event Format Hashtbl Int List Msg Option Pid Printf
