lib/core/extension.mli: Bitset Event Pset Spec Trace Universe
