lib/core/kprogram.mli: Event Formula Pid Prop Pset Spec Universe
