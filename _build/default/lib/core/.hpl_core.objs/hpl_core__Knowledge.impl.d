lib/core/knowledge.ml: Array Bitset Format Isomorphism List Prop Pset Universe
