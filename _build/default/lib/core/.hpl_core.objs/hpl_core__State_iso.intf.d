lib/core/state_iso.mli: Bitset Event Pid Prop Pset Trace Universe
