lib/core/universe.ml: Array Bitset Event Format Hashtbl List Msg Pid Pset Spec Trace
