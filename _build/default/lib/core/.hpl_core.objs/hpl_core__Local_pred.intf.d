lib/core/local_pred.mli: Prop Pset Universe
