lib/core/common_knowledge.mli: Bitset Prop Universe
