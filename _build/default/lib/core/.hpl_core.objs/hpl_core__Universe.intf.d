lib/core/universe.mli: Bitset Format Pid Pset Spec Trace
