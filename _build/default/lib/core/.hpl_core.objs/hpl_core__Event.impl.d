lib/core/event.ml: Format Hashtbl Int Msg Pid Pset String
