lib/core/group.ml: Bitset Format Knowledge Printf Prop Pset Universe
