lib/core/trace_stats.mli: Event Format Trace
