lib/core/dot.ml: Buffer List Printf String
