lib/core/prop.mli: Bitset Format Pid Trace Universe
