let sure_ext u ps b =
  let ext = Prop.extent u b in
  Bitset.union
    (Knowledge.knows_ext u ps ext)
    (Knowledge.knows_ext u ps (Bitset.complement ext))

let is_local u ps b =
  Bitset.equal (sure_ext u ps b) (Bitset.create_full (Universe.size u))

let lemma3_constant u p q b =
  let premise = Pset.disjoint p q && is_local u p b && is_local u q b in
  (not premise) || Prop.is_constant u b

module Facts = struct
  let fact1_iso_invariant u ps b =
    (not (is_local u ps b))
    ||
    let ids = Universe.pset_class_ids u ps in
    let ext = Prop.extent u b in
    let ok = ref true in
    Universe.iter
      (fun i _ ->
        Universe.iter
          (fun j _ ->
            if ids.(i) = ids.(j) && Bitset.mem ext i <> Bitset.mem ext j then
              ok := false)
          u)
      u;
    !ok

  let fact2_known u ps b =
    (not (is_local u ps b))
    ||
    let ext = Prop.extent u b in
    Bitset.equal ext (Knowledge.knows_ext u ps ext)

  let fact3_negation u ps b = is_local u ps b = is_local u ps (Prop.not_ b)

  let fact4_knowledge_collapse u p q b =
    (not (is_local u p b))
    || Bitset.equal
         (Prop.extent u (Knowledge.knows u q b))
         (Prop.extent u (Knowledge.knows u q (Knowledge.knows u p b)))

  let fact5_knows_is_local u ps b = is_local u ps (Knowledge.knows u ps b)
  let fact6_disjoint_constant = lemma3_constant

  let fact7_constants_local u ps c = is_local u ps (Prop.const c)

  let fact8_sure_is_local u ps b = is_local u ps (Knowledge.sure u ps b)
end

let identical_knowledge_constant u p q b =
  let kp = Prop.extent u (Knowledge.knows u p b) in
  let kq = Prop.extent u (Knowledge.knows u q b) in
  let premise = Pset.disjoint p q && Bitset.equal kp kq in
  (not premise)
  || Bitset.is_empty kp
  || Bitset.equal kp (Bitset.create_full (Universe.size u))

let identical_sure_constant u p q b =
  let sp = sure_ext u p b in
  let sq = sure_ext u q b in
  let premise = Pset.disjoint p q && Bitset.equal sp sq in
  (not premise)
  || Bitset.is_empty sp
  || Bitset.equal sp (Bitset.create_full (Universe.size u))
