(* Experiment harness: regenerates every figure/claim of the paper.
   Each [run_*] prints a self-contained table; EXPERIMENTS.md records the
   expected shapes. All runs are deterministic (seeded). *)
open Hpl_core
open Hpl_protocols

let section id title =
  Printf.printf "\n=== %s — %s ===\n" id title

let p0 = Pid.of_int 0
let p1 = Pid.of_int 1

(* ---------------------------------------------------------------- E1 *)

let run_e1 () =
  section "E1" "Figure 3-1: isomorphism diagram";
  let ea = Event.internal ~pid:p0 ~lseq:0 "a" in
  let eb = Event.internal ~pid:p1 ~lseq:0 "b" in
  let named =
    [
      ("x", Trace.of_list [ ea; eb ]);
      ("y", Trace.of_list [ ea ]);
      ("z", Trace.of_list [ eb; ea ]);
      ("w", Trace.of_list [ eb ]);
    ]
  in
  Pid.set_name p0 "p";
  Pid.set_name p1 "q";
  let d = Iso_diagram.of_computations ~all:(Pset.all 2) named in
  List.iter
    (fun e ->
      Printf.printf "  %s -- %s : [%s]\n" e.Iso_diagram.x e.Iso_diagram.y
        (Pset.to_string e.Iso_diagram.label))
    (Iso_diagram.edges d);
  Printf.printf "  (self-loops labelled [%s]; y–w unrelated, as in the figure)\n"
    (Pset.to_string (Iso_diagram.self_label d));
  (* restore default names for later experiments *)
  Pid.set_name p0 "p0";
  Pid.set_name p1 "p1"

(* ---------------------------------------------------------------- E2 *)

let random_pset rng n =
  let s = ref Pset.empty in
  for i = 0 to n - 1 do
    if Hpl_sim.Rng.bool rng then s := Pset.add (Pid.of_int i) !s
  done;
  !s

let run_e2 () =
  section "E2" "§3 algebraic laws of isomorphism (random instances)";
  let spec = Spec.make ~n:2 (fun p history ->
      if List.length history >= 2 then []
      else
        let right = Pid.of_int ((Pid.to_int p + 1) mod 2) in
        [ Spec.Send_to (right, "c"); Spec.Do "idle"; Spec.Recv_any ])
  in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let rng = Hpl_sim.Rng.create 17L in
  let trials = 2000 in
  let failures = ref 0 in
  let laws =
    [
      ("idempotence [PP]=[P]", fun i j ps _qs -> Isomorphism.Laws.idempotence u ps i j);
      ("reflexivity x[α]x", fun i _j ps qs -> Isomorphism.Laws.reflexivity u [ ps; qs ] i);
      ("inversion", fun i j ps qs -> Isomorphism.Laws.inversion u [ ps; qs ] i j);
      ("concatenation", fun i j ps qs -> Isomorphism.Laws.concatenation u [ ps ] [ qs ] i j);
      ("union/inter", fun i j ps qs -> Isomorphism.Laws.union_inter u ps qs i j);
      ("monotonicity", fun i j ps qs -> Isomorphism.Laws.monotonicity u ps (Pset.union ps qs) i j);
      ("subsumption", fun i j ps qs -> Isomorphism.Laws.subsumption u (Pset.union ps qs) ps i j);
      ("substitution", fun i j ps qs -> Isomorphism.Laws.substitution u [ ps ] qs qs [ ps ] i j);
      ("extensionality", fun _i _j ps qs -> Isomorphism.Laws.extensionality u ps qs);
    ]
  in
  List.iter
    (fun (nm, law) ->
      let bad = ref 0 in
      for _ = 1 to trials do
        let i = Hpl_sim.Rng.int rng (Universe.size u) in
        let j = Hpl_sim.Rng.int rng (Universe.size u) in
        let ps = random_pset rng 2 and qs = random_pset rng 2 in
        if not (law i j ps qs) then incr bad
      done;
      failures := !failures + !bad;
      Printf.printf "  %-28s %d trials, %d violations\n" nm trials !bad)
    laws;
  Printf.printf "  => total violations: %d (expected 0)\n" !failures

(* ---------------------------------------------------------------- E3 *)

let run_e3 () =
  section "E3" "Theorem 1: chain/isomorphism dichotomy";
  let spec = Spec.make ~n:2 (fun p history ->
      if List.length history >= 2 then []
      else
        let right = Pid.of_int ((Pid.to_int p + 1) mod 2) in
        [ Spec.Send_to (right, "c"); Spec.Do "idle"; Spec.Recv_any ])
  in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let psets_choices =
    [
      [ Pset.singleton p0 ];
      [ Pset.singleton p1 ];
      [ Pset.singleton p0; Pset.singleton p1 ];
      [ Pset.singleton p1; Pset.singleton p0 ];
    ]
  in
  let instances = ref 0 and holds = ref 0 and iso_only = ref 0 and chain_only = ref 0 and both = ref 0 in
  Universe.iter
    (fun zi z ->
      List.iter
        (fun xi ->
          let x = Universe.comp u xi in
          if Trace.is_prefix x z then
            List.iter
              (fun psets ->
                incr instances;
                let v = Theorem1.check u ~x ~z psets in
                let has_chain = v.Theorem1.chain <> None in
                if v.Theorem1.iso || has_chain then incr holds;
                if v.Theorem1.iso && not has_chain then incr iso_only;
                if has_chain && not v.Theorem1.iso then incr chain_only;
                if v.Theorem1.iso && has_chain then incr both)
              psets_choices)
        (Universe.prefixes_of u zi))
    u;
  Printf.printf "  instances: %d  dichotomy holds: %d (%.1f%%)\n" !instances !holds
    (100.0 *. float_of_int !holds /. float_of_int !instances);
  Printf.printf "  iso-only: %d  chain-only: %d  both: %d\n" !iso_only !chain_only !both

(* ---------------------------------------------------------------- E4 *)

let run_e4 () =
  section "E4" "Lemma 1 / Theorem 2: fusion of computations (Figs 3-2, 3-3)";
  (* drive theorem2 over all pairs of extensions of all prefixes in a
     chatter universe; count how often preconditions admit a fusion and
     verify every constructed fusion *)
  let spec = Spec.make ~n:2 (fun p history ->
      if List.length history >= 2 then []
      else
        let right = Pid.of_int ((Pid.to_int p + 1) mod 2) in
        [ Spec.Send_to (right, "c"); Spec.Do "idle"; Spec.Recv_any ])
  in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let all = Pset.all 2 in
  let p = Pset.singleton p0 in
  let attempted = ref 0 and fused = ref 0 and verified = ref 0 and rejected = ref 0 in
  Universe.iter
    (fun _ x ->
      Universe.iter
        (fun _ y ->
          if Trace.is_prefix x y then
            Universe.iter
              (fun _ z ->
                if Trace.is_prefix x z then begin
                  incr attempted;
                  match Fusion.theorem2 ~all ~n:2 ~x ~y ~z ~p with
                  | Ok w ->
                      incr fused;
                      if
                        Fusion.verify_theorem2 ~all ~x ~y ~z ~p ~w
                        && Spec.valid spec w
                      then incr verified
                  | Error _ -> incr rejected
                end)
              u)
        u)
    u;
  Printf.printf "  instances: %d  preconditions met: %d  rejected: %d\n" !attempted
    !fused !rejected;
  Printf.printf "  fusions verified (iso + valid computation): %d / %d\n" !verified !fused

(* ---------------------------------------------------------------- E5 *)

let run_e5 () =
  section "E5" "Theorem 3: how events move the isomorphism set";
  let spec = Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        match history with
        | [] -> [ Spec.Send_to (p1, "ping") ]
        | _ -> [ Spec.Recv_any ]
      else
        match history with
        | [] -> [ Spec.Recv_any ]
        | [ _ ] -> [ Spec.Send_to (p0, "pong") ]
        | _ -> [])
  in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping" in
  let pong = Msg.make ~src:p1 ~dst:p0 ~seq:0 ~payload:"pong" in
  let steps =
    [
      ("ε", Trace.empty);
      ("send ping", Trace.of_list [ Event.send ~pid:p0 ~lseq:0 ping ]);
      ( "recv ping",
        Trace.of_list
          [ Event.send ~pid:p0 ~lseq:0 ping; Event.receive ~pid:p1 ~lseq:0 ping ] );
      ( "send pong",
        Trace.of_list
          [
            Event.send ~pid:p0 ~lseq:0 ping;
            Event.receive ~pid:p1 ~lseq:0 ping;
            Event.send ~pid:p1 ~lseq:1 pong;
          ] );
      ( "recv pong",
        Trace.of_list
          [
            Event.send ~pid:p0 ~lseq:0 ping;
            Event.receive ~pid:p1 ~lseq:0 ping;
            Event.send ~pid:p1 ~lseq:1 pong;
            Event.receive ~pid:p0 ~lseq:1 pong;
          ] );
    ]
  in
  Printf.printf "  %-12s %14s %14s\n" "after" "|iso-set p0|" "|iso-set p1|";
  List.iter
    (fun (nm, z) ->
      let s0 = Extension.iso_set u (Pset.singleton p0) z in
      let s1 = Extension.iso_set u (Pset.singleton p1) z in
      Printf.printf "  %-12s %14d %14d\n" nm (Bitset.cardinal s0) (Bitset.cardinal s1))
    steps;
  Printf.printf "  (receives shrink the receiver's set; sends grow or preserve the sender's)\n"

(* ---------------------------------------------------------------- E6 *)

let run_e6 () =
  section "E6" "§4.1 knowledge facts 1-12 and Lemma 2";
  let spec = Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        match history with
        | [] -> [ Spec.Send_to (p1, "ping") ]
        | _ -> [ Spec.Recv_any ]
      else
        match history with
        | [] -> [ Spec.Recv_any ]
        | [ _ ] -> [ Spec.Send_to (p0, "pong") ]
        | _ -> [])
  in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let received =
    Prop.make "received" (fun z -> List.exists Event.is_receive (Trace.proj z p1))
  in
  let props = [ sent; received; Prop.tt; Prop.ff ] in
  let psets = [ Pset.singleton p0; Pset.singleton p1; Pset.all 2; Pset.empty ] in
  let checks = ref 0 and bad = ref 0 in
  let tally name ok =
    incr checks;
    if not ok then begin
      incr bad;
      Printf.printf "  VIOLATION: %s\n" name
    end
  in
  List.iter
    (fun ps ->
      List.iter
        (fun b ->
          tally "fact1" (Knowledge.Laws.fact1_class_invariant u ps b);
          tally "fact4" (Knowledge.Laws.fact4_veridical u ps b);
          tally "fact5" (Knowledge.Laws.fact5_total u ps b);
          tally "fact6" (Knowledge.Laws.fact6_conjunction u ps b received);
          tally "fact7" (Knowledge.Laws.fact7_disjunction u ps b received);
          tally "fact8" (Knowledge.Laws.fact8_consistency u ps b);
          tally "fact9" (Knowledge.Laws.fact9_closure u ps b (Prop.or_ b received));
          tally "fact10" (Knowledge.Laws.fact10_positive_introspection u ps b);
          tally "fact11/lemma2" (Knowledge.Laws.fact11_negative_introspection u ps b))
        props;
      tally "fact12t" (Knowledge.Laws.fact12_constants u ps true);
      tally "fact12f" (Knowledge.Laws.fact12_constants u ps false))
    psets;
  List.iter
    (fun b -> tally "fact3" (Knowledge.Laws.fact3_monotone_union u (Pset.singleton p0) (Pset.singleton p1) b))
    props;
  Printf.printf "  %d law instances checked, %d violations (expected 0)\n" !checks !bad

(* ---------------------------------------------------------------- E7 *)

let run_e7 () =
  section "E7" "§4.2 local predicates, Lemma 3, common-knowledge constancy";
  let spec = Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        match history with
        | [] -> [ Spec.Send_to (p1, "ping") ]
        | _ -> [ Spec.Recv_any ]
      else
        match history with
        | [] -> [ Spec.Recv_any ]
        | [ _ ] -> [ Spec.Send_to (p0, "pong") ]
        | _ -> [])
  in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let s0 = Pset.singleton p0 and s1 = Pset.singleton p1 in
  Printf.printf "  'sent' local to p0: %b  local to p1: %b\n"
    (Local_pred.is_local u s0 sent)
    (Local_pred.is_local u s1 sent);
  Printf.printf "  lemma 3 (disjoint locality => constant): %b\n"
    (Local_pred.lemma3_constant u s0 s1 sent);
  Printf.printf "  identical-knowledge corollary: %b\n"
    (Local_pred.identical_knowledge_constant u s0 s1 sent);
  Printf.printf "  CK('sent') constant: %b  value: %b  fixpoint iterations: %d\n"
    (Common_knowledge.constancy_holds u sent)
    (Prop.eval (Common_knowledge.common u sent) Trace.empty)
    (Common_knowledge.iterations_to_fixpoint u sent);
  (* E^k approximation sizes *)
  Printf.printf "  |E^k(sent)| by depth k:";
  for k = 0 to 4 do
    Printf.printf " k=%d:%d" k
      (Bitset.cardinal (Prop.extent u (Common_knowledge.level u k sent)))
  done;
  print_newline ()

(* ---------------------------------------------------------------- E8 *)

let run_e8 () =
  section "E8" "§4.1 token bus: nested knowledge when r holds the token";
  let u = Universe.enumerate ~mode:`Canonical (Token_bus.spec ~n:5) ~depth:10 in
  let r_holds = Token_bus.holds (Pid.of_int 2) in
  let assertion = Token_bus.paper_assertion u in
  let r_states = ref 0 and holds_all = ref true and non_r = ref 0 and holds_elsewhere = ref 0 in
  Universe.iter
    (fun _ z ->
      if Prop.eval r_holds z then begin
        incr r_states;
        if not (Prop.eval assertion z) then holds_all := false
      end
      else begin
        incr non_r;
        if Prop.eval assertion z then incr holds_elsewhere
      end)
    u;
  Printf.printf "  universe: %d computations (canonical, depth 10)\n" (Universe.size u);
  Printf.printf "  computations where r holds token: %d — assertion holds at all: %b\n"
    !r_states !holds_all;
  Printf.printf "  (for contrast, it also holds at %d of %d non-r-holding computations)\n"
    !holds_elsewhere !non_r

(* ---------------------------------------------------------------- E9 *)

let run_e9 () =
  section "E9" "Theorems 4-6: knowledge transfer is sequential";
  (* two-generals ladder: nested depth vs delivered messages *)
  let u = Universe.enumerate ~mode:`Canonical Two_generals.spec ~depth:11 in
  Printf.printf "  two generals: delivered messages k -> max nested-knowledge depth\n   ";
  for rounds = 0 to 4 do
    let z = Two_generals.ladder_trace ~rounds in
    Printf.printf " k=%d:depth=%d" rounds (Two_generals.max_depth_at u z)
  done;
  Printf.printf "\n  CK(attack) ever attained: %b (expected false)\n"
    (not (Two_generals.common_knowledge_never u));
  (* gossip at scale: rounds to knowledge *)
  Printf.printf "  gossip (push): n -> (all informed?, messages, t_all, t_depth2)\n";
  List.iter
    (fun n ->
      let o = Gossip.run { Gossip.default with n; seed = 5L } in
      let t_all =
        Array.fold_left
          (fun acc t -> match t with Some t -> max acc t | None -> acc)
          0.0 o.Gossip.informed_time
      in
      Printf.printf "    n=%2d  all=%b  msgs=%4d  t_all=%7.1f  t_depth2=%s\n" n
        o.Gossip.all_informed o.Gossip.messages t_all
        (match o.Gossip.depth2_complete_time with
        | Some t -> Printf.sprintf "%7.1f" t
        | None -> "   -"))
    [ 4; 8; 16; 32 ];
  (* dissemination strategy comparison at n=16 *)
  Printf.printf "  gossip modes (n=16): mode -> (t_all, messages)\n";
  List.iter
    (fun (name, mode) ->
      let o = Gossip.run { Gossip.default with n = 16; mode; seed = 5L } in
      let t_all =
        Array.fold_left
          (fun acc t -> match t with Some t -> max acc t | None -> infinity)
          0.0 o.Gossip.informed_time
      in
      Printf.printf "    %-10s t_all=%7.1f  msgs=%4d\n" name t_all o.Gossip.messages)
    [ ("push", Gossip.Push); ("pull", Gossip.Pull); ("push-pull", Gossip.Push_pull) ]

(* ---------------------------------------------------------------- E10 *)

let run_e10 () =
  section "E10" "§5 failure detection: impossible without timeouts";
  let u =
    Universe.enumerate ~mode:`Canonical (Failure_detector.crashable_spec ~n:2) ~depth:6
  in
  Printf.printf "  exact (universe %d computations): observer ever knows crash: %b\n"
    (Universe.size u)
    (not (Failure_detector.nobody_ever_knows u ~observer:p1 ~subject:p0));
  Printf.printf "  heartbeat detector (crash at t=100, horizon 300):\n";
  Printf.printf "  %-28s %6s %6s %10s\n" "timeout regime" "false" "miss" "detect t";
  List.iter
    (fun (label, timeout, max_delay) ->
      let config = { Hpl_sim.Engine.default with max_delay } in
      let o =
        Failure_detector.run ~config { Failure_detector.default with timeout }
      in
      Printf.printf "  %-28s %6d %6d %10s\n" label o.Failure_detector.false_suspicions
        o.Failure_detector.missed
        (match o.Failure_detector.detection_time with
        | Some t -> Printf.sprintf "%.1f" t
        | None -> "-"))
    [
      ("sync (T=20 > period+delay)", 20.0, 10.0);
      ("tight (T=6)", 6.0, 10.0);
      ("too short (T=2)", 2.0, 10.0);
      ("slow net (T=20, delay<=60)", 20.0, 60.0);
    ]

(* ---------------------------------------------------------------- E11 *)

let run_e11 () =
  section "E11" "§5 termination detection: overhead vs underlying messages";
  let detectors p cfg =
    [
      Dijkstra_scholten.run ~config:cfg p;
      Credit.run ~config:cfg p;
      Safra.run ~config:cfg ~round_delay:2.0 p;
      Snapshot_term.run ~config:cfg ~attempt_delay:3.0 p;
      Probe.run ~config:cfg ~wave_delay:2.0 ~mode:`Four_counter p;
      Probe.run ~config:cfg ~wave_delay:2.0 ~mode:`Naive p;
    ]
  in
  List.iter
    (fun (wl_name, mk) ->
      Printf.printf "  workload: %s\n" wl_name;
      Printf.printf "  %s\n" Termination.row_header;
      List.iter
        (fun budget ->
          let params, cfg = mk budget in
          List.iter
            (fun r -> Printf.printf "  %s  (budget %d)\n" (Termination.report_row r) budget)
            (detectors params cfg))
        [ 25; 100; 400 ])
    [
      ( "burst (fanout 3, n=6)",
        fun budget ->
          ( { Underlying.default with n = 6; budget; seed = 31L },
            { Hpl_sim.Engine.default with seed = 31L } ) );
      ( "trickle (fanout 1, sequential)",
        fun budget ->
          ( {
              Underlying.default with
              n = 6;
              budget;
              fanout = 1;
              spawn_prob = 1.0;
              seed = 32L;
            },
            { Hpl_sim.Engine.default with seed = 32L } ) );
    ];
  Printf.printf
    "  (shape: sound detectors pay >= M overhead in the adversarial regime;\n\
    \   the naive probe goes under the bound only by being wrong)\n"

(* ---------------------------------------------------------------- E12 *)

let run_e12 () =
  section "E12" "§5 remote tracking of a changing local predicate";
  let silent =
    Universe.enumerate ~mode:`Canonical (Tracking.silent_spec ~n:2 ~flips:2 ~ticks:2)
      ~depth:4
  in
  let notify = Universe.enumerate ~mode:`Canonical (Tracking.notify_spec ~flips:2) ~depth:8 in
  Printf.printf "  silent flipper: tracker unsure after any flip: %b\n"
    (Tracking.tracker_always_unsure_after_flip silent);
  Printf.printf "  unsure-while-changing — silent: %b  notify: %b\n"
    (Tracking.unsure_while_changing silent)
    (Tracking.unsure_while_changing notify);
  Printf.printf "  change requires flipper to know tracker is unsure — silent: %b  notify: %b\n"
    (Tracking.change_requires_known_unsureness silent ~tracker:p1)
    (Tracking.change_requires_known_unsureness notify ~tracker:p1);
  (* fraction of notify computations where the tracker is sure *)
  let sure = Knowledge.sure notify (Pset.singleton p1) Tracking.bit in
  let total = Universe.size notify in
  let n_sure = Universe.fold (fun _ z acc -> if Prop.eval sure z then acc + 1 else acc) notify 0 in
  Printf.printf "  notify protocol: tracker sure in %d / %d computations\n" n_sure total

(* ---------------------------------------------------------------- E13 *)

let run_e13 () =
  section "E13" "knowledge in running protocols: ring mutex, echo waves, election";
  (* token ring: exclusion + fairness *)
  let tr = Token_ring.run { Token_ring.default with horizon = 1000.0 } in
  Printf.printf "  token ring (n=%d): mutual exclusion=%b  all served=%b  passes=%d  entries=[%s]\n"
    Token_ring.default.Token_ring.n tr.Token_ring.mutual_exclusion
    tr.Token_ring.all_served tr.Token_ring.token_passes
    (String.concat ";" (Array.to_list (Array.map string_of_int tr.Token_ring.entries)));
  (* echo: message complexity and the knowledge chain *)
  Printf.printf "  echo/PIF: n -> (messages, 2(n-1)^2, completion-knows-all)\n";
  List.iter
    (fun n ->
      let o = Echo.run { Echo.default with n } in
      Printf.printf "    n=%2d  msgs=%4d  expected=%4d  knows-all=%b\n" n
        o.Echo.messages
        (2 * (n - 1) * (n - 1))
        o.Echo.completion_knows_all)
    [ 2; 4; 8; 16 ];
  (* chang-roberts: election message statistics over seeds *)
  Printf.printf "  chang-roberts (n=8): election messages over 20 seeds\n";
  let n = 8 in
  let msgs =
    List.map
      (fun s ->
        let o = Chang_roberts.run { Chang_roberts.default with n; seed = Int64.of_int s } in
        o.Chang_roberts.election_messages)
      (List.init 20 (fun i -> i + 1))
  in
  let mn = List.fold_left min max_int msgs and mx = List.fold_left max 0 msgs in
  let avg = float_of_int (List.fold_left ( + ) 0 msgs) /. 20.0 in
  Printf.printf "    min=%d  avg=%.1f  max=%d  (bounds: best 2n-1=%d, worst n(n+1)/2=%d)\n"
    mn avg mx ((2 * n) - 1) (n * (n + 1) / 2)

(* ---------------------------------------------------------------- E14 *)

let run_e14 () =
  section "E14" "§6 generalizations: state-based knowledge; consistent-cut lattice";
  let spec = Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        match history with
        | [] -> [ Spec.Send_to (p1, "ping") ]
        | _ -> [ Spec.Recv_any ]
      else
        match history with
        | [] -> [ Spec.Recv_any ]
        | [ _ ] -> [ Spec.Send_to (p0, "pong") ]
        | _ -> [])
  in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  Printf.printf "  view -> |knows(p1, sent)| extent (|U|=%d):\n" (Universe.size u);
  List.iter
    (fun view ->
      let t = State_iso.make u view in
      let k = State_iso.knows_ext t (Pset.singleton p1) (Prop.extent u sent) in
      Printf.printf "    %-12s %d computations\n" view.State_iso.name
        (Bitset.cardinal k))
    [ State_iso.full; State_iso.counters; State_iso.last_event; State_iso.message_log ];
  (* cut lattice sizes vs concurrency *)
  Printf.printf "  consistent cuts: sequential chain vs independent events\n";
  let chain_z =
    let m01 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m" in
    Trace.of_list
      [ Event.send ~pid:p0 ~lseq:0 m01; Event.receive ~pid:p1 ~lseq:0 m01 ]
  in
  let indep_z =
    Trace.of_list
      [ Event.internal ~pid:p0 ~lseq:0 "a"; Event.internal ~pid:p1 ~lseq:0 "b" ]
  in
  Printf.printf "    2-event causal chain: %d cuts;  2 independent events: %d cuts\n"
    (Cut.count_consistent ~n:2 chain_z)
    (Cut.count_consistent ~n:2 indep_z);
  let ladder = Hpl_protocols.Two_generals.ladder_trace ~rounds:3 in
  Printf.printf "    two-generals ladder (7 events): %d cuts (chain-like: length+1 = 8)\n"
    (Cut.count_consistent ~n:2 ladder);
  (* and the cut a real snapshot records is one point of that lattice *)
  let snap = Snapshot.run Snapshot.default in
  Printf.printf
    "  chandy-lamport snapshot of a live run: consistent=%b conservation=%b\n"
    snap.Snapshot.consistent snap.Snapshot.conservation

(* ---------------------------------------------------------------- E15 *)

let run_e15 () =
  section "E15" "Chandy-Misra-Haas deadlock detection: learning you are stuck";
  List.iter
    (fun (name, params) ->
      let o = Deadlock.run params in
      Printf.printf "  %-24s declared=[%s]  ground-truth-match=%b  probes=%d\n"
        name
        (String.concat ""
           (Array.to_list (Array.map (fun b -> if b then "X" else ".") o.Deadlock.declared)))
        o.Deadlock.correct o.Deadlock.probes)
    [
      ("ring of 6 (all stuck)", Deadlock.ring_deadlock ~n:6);
      ("chain of 6 (none stuck)", Deadlock.chain_no_deadlock ~n:6);
      ("partial cycle {1,2}", Deadlock.of_edges ~n:4 [ (0, 1); (1, 2); (2, 1) ]);
      ( "two cycles {0,1},{3,4,5}",
        Deadlock.of_edges ~n:6 [ (0, 1); (1, 0); (3, 4); (4, 5); (5, 3) ] );
    ];
  Printf.printf
    "  (a process declares iff its own probe returns — a process chain\n\
    \   around its cycle: you learn you are deadlocked only from yourself)\n"

(* ---------------------------------------------------------------- E16 *)

let run_e16 () =
  section "E16" "ordering protocols: Lamport mutex, causal broadcast, possibly/definitely";
  let mx = Lamport_mutex.run Lamport_mutex.default in
  Printf.printf
    "  lamport mutex (n=%d, 3 rounds): exclusion=%b  ts-order=%b  msgs/entry=%.1f (theory: %d)\n"
    Lamport_mutex.default.Lamport_mutex.n mx.Lamport_mutex.mutual_exclusion
    mx.Lamport_mutex.timestamp_order_respected mx.Lamport_mutex.messages_per_entry
    (3 * (Lamport_mutex.default.Lamport_mutex.n - 1));
  let ra = Ricart_agrawala.run Ricart_agrawala.default in
  Printf.printf
    "  ricart-agrawala (n=%d):           exclusion=%b  msgs/entry=%.1f (theory: %d) — the fused-reply optimization\n"
    Ricart_agrawala.default.Ricart_agrawala.n ra.Ricart_agrawala.mutual_exclusion
    ra.Ricart_agrawala.messages_per_entry
    (2 * (Ricart_agrawala.default.Ricart_agrawala.n - 1));
  Printf.printf "  causal broadcast under reordering (delay 1..40, no FIFO):\n";
  List.iter
    (fun seed ->
      let config =
        { Hpl_sim.Engine.default with fifo = false; max_delay = 40.0; seed }
      in
      let o = Causal_broadcast.run ~config Causal_broadcast.default in
      Printf.printf
        "    seed=%Ld  buffered=%2d/%d arrivals  causal-delivery=%b\n" seed
        o.Causal_broadcast.buffered_arrivals o.Causal_broadcast.delivered_total
        o.Causal_broadcast.causal_delivery_ok)
    [ 1L; 2L; 3L ];
  let to_ = Total_order.run { Total_order.default with n = 4 } in
  Printf.printf
    "  total-order broadcast (sequencer): identical delivery order=%b  gaps buffered=%d\n"
    to_.Total_order.identical_order to_.Total_order.gaps_buffered;
  (* possibly/definitely on a concurrent trace *)
  let pa = Pid.of_int 0 and pb = Pid.of_int 1 in
  let two_tickers =
    Trace.of_list
      [
        Event.internal ~pid:pa ~lseq:0 "tick";
        Event.internal ~pid:pb ~lseq:0 "tick";
        Event.internal ~pid:pa ~lseq:1 "tick";
        Event.internal ~pid:pb ~lseq:1 "tick";
      ]
  in
  let both_at_one z =
    Trace.local_length z pa = 1 && Trace.local_length z pb = 1
  in
  Printf.printf
    "  observer detection on 2x2 independent ticks: possibly(both-at-1)=%b  definitely=%b\n"
    (Detect.possibly ~n:2 two_tickers both_at_one)
    (Detect.definitely ~n:2 two_tickers both_at_one);
  Printf.printf
    "  (exactly the §5 tracking gap: true on some interleaving, not forced on all)\n"

(* ---------------------------------------------------------------- E17 *)

let run_e17 () =
  section "E17" "elections and the synchrony they secretly buy (bully vs ring)";
  let show name o =
    Printf.printf "  %-34s coordinators=[%s]  agreed=%s  safe=%b  msgs=%d\n" name
      (String.concat ";" (List.map string_of_int o.Bully.coordinators))
      (match o.Bully.agreed_on with Some c -> "p" ^ string_of_int c | None -> "-")
      o.Bully.safe o.Bully.messages
  in
  show "bully, all alive" (Bully.run Bully.default);
  show "bully, top crashed" (Bully.run { Bully.default with crash = Some 4 });
  let slow = { Hpl_sim.Engine.default with min_delay = 20.0; max_delay = 80.0 } in
  show "bully, delays >> timeout"
    (Bully.run ~config:slow { Bully.default with ok_timeout = 10.0 });
  let cr = Chang_roberts.run { Chang_roberts.default with n = 5 } in
  Printf.printf
    "  %-34s leader=%s  agreed=%b  msgs=%d (no timeouts, but cannot survive a crash)\n"
    "chang-roberts ring, all alive"
    (match cr.Chang_roberts.leader with Some l -> "p" ^ string_of_int l | None -> "-")
    cr.Chang_roberts.agreed cr.Chang_roberts.messages;
  Printf.printf
    "  (bully tolerates crashes by spending timeouts — §5: without them,\n\
    \   silence can never become knowledge of failure)\n"

(* ---------------------------------------------------------------- E18 *)

let run_e18 () =
  section "E18" "post-mortem knowledge: replay universes = cut lattices";
  let params = { Underlying.default with n = 3; budget = 4; seed = 4L } in
  let r = Underlying.run params in
  let z = r.Hpl_sim.Engine.trace in
  let n = 3 in
  let u = Replay.universe_of_trace ~n z in
  Printf.printf
    "  recorded run: %d events; consistent cuts: %d; replay universe: %d (identical by construction)\n"
    (Trace.length z)
    (Cut.count_consistent ~n z)
    (Universe.size u);
  let started =
    Prop.make "root started" (fun c -> Trace.send_count c (Pid.of_int 0) > 0)
  in
  Printf.printf "  first-knowledge positions (log-analyst view):";
  List.iter
    (fun i ->
      Printf.printf " p%d:%s" i
        (match Replay.knew_at ~n z (Pset.singleton (Pid.of_int i)) started with
        | Some k -> string_of_int k
        | None -> "never"))
    [ 0; 1; 2 ];
  print_newline ()

(* ---------------------------------------------------------------- E19 *)

let run_e19 () =
  section "E19" "two-phase commit: blocking as a knowledge limitation";
  let show name o =
    Printf.printf "  %-30s decisions=[%s]  blocked=%d  agree=%b\n" name
      (String.concat ";"
         (Array.to_list
            (Array.map
               (function Some d -> d | None -> "?")
               o.Two_phase_commit.decisions)))
      o.Two_phase_commit.blocked o.Two_phase_commit.agreement
  in
  show "all yes" (Two_phase_commit.run Two_phase_commit.default);
  show "one NO voter"
    (Two_phase_commit.run { Two_phase_commit.default with no_voters = [ 2 ] });
  show "coordinator crash at t=10"
    (Two_phase_commit.run
       { Two_phase_commit.default with crash_coordinator_at = Some 10.0 });
  let u = Universe.enumerate ~mode:`Canonical Two_phase_commit.spec ~depth:8 in
  Printf.printf
    "  exact (universe %d): YES-voted, outcome-decided, participant knows neither verdict: %b\n"
    (Universe.size u)
    (Two_phase_commit.uncertainty_is_real u);
  Printf.printf
    "  (blocking = the §4.3 corollary: only a receive can resolve the window)\n"

(* ---------------------------------------------------------------- E20 *)

let run_e20 () =
  section "E20" "quorum knowledge: the ABD register under crashes";
  let show name o =
    Printf.printf "  %-22s atomic=%b  completed=%2d  blocked=%d  msgs=%d\n" name
      o.Abd_register.atomic o.Abd_register.completed_ops o.Abd_register.blocked_ops
      o.Abd_register.messages
  in
  show "healthy (n=5)" (Abd_register.run Abd_register.default);
  show "minority crash (2/5)"
    (Abd_register.run { Abd_register.default with crash = [ (30.0, 3); (60.0, 4) ] });
  show "majority crash (3/5)"
    (Abd_register.run
       { Abd_register.default with crash = [ (30.0, 2); (30.0, 3); (30.0, 4) ] });
  Printf.printf
    "  (overlapping majorities force a process chain between any two\n\
    \   operations: atomicity survives any minority, liveness does not\n\
    \   survive a majority — safety is knowledge, liveness is reachability)\n"

(* ---------------------------------------------------------------- E21 *)

let run_e21 () =
  section "E21" "consensus: single-decree Paxos under contention and crashes";
  let show name o =
    Printf.printf "  %-32s agree=%b  decided=%b  ballots=%d  msgs=%3d  value=%s\n"
      name o.Paxos.agreement o.Paxos.any_decision o.Paxos.ballots_started
      o.Paxos.messages
      (match List.sort_uniq compare (List.map snd o.Paxos.decided) with
      | [ v ] -> string_of_int v
      | [] -> "-"
      | vs -> "CONFLICT " ^ String.concat "," (List.map string_of_int vs))
  in
  show "1 proposer" (Paxos.run Paxos.default);
  show "3 proposers (contention)" (Paxos.run { Paxos.default with proposers = 3 });
  show "2 proposers, 2 acceptors crash"
    (Paxos.run { Paxos.default with proposers = 2; crash = [ (5.0, 3); (5.0, 4) ] });
  show "2 proposers, p0 crashes mid-ballot"
    (Paxos.run { Paxos.default with proposers = 2; crash = [ (22.0, 0) ] });
  Printf.printf
    "  (the last row shows value adoption: p0 is dead, its value wins —\n\
    \   quorum intersection forced the chain from the old ballot to the new)\n"

let run_all () =
  run_e1 ();
  run_e2 ();
  run_e3 ();
  run_e4 ();
  run_e5 ();
  run_e6 ();
  run_e7 ();
  run_e8 ();
  run_e9 ();
  run_e10 ();
  run_e11 ();
  run_e12 ();
  run_e13 ();
  run_e14 ();
  run_e15 ();
  run_e16 ();
  run_e17 ();
  run_e18 ();
  run_e19 ();
  run_e20 ();
  run_e21 ()
