bench/main.mli:
