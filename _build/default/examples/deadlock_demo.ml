(* Chandy-Misra-Haas deadlock detection: learning you are stuck.

     dune exec examples/deadlock_demo.exe

   Processes wait for each other; probes circulate the wait-for edges.
   A process declares itself deadlocked exactly when its own probe
   comes back — a process chain around its cycle, the paper's
   knowledge-gain theorem in its most personal form. *)
open Hpl_protocols

let show name params =
  let o = Deadlock.run params in
  Printf.printf "%-28s " name;
  Array.iteri
    (fun i d ->
      Printf.printf "p%d:%s " i (if d then "DEADLOCKED" else "ok"))
    o.Deadlock.declared;
  Printf.printf "  (matches ground truth: %b, %d probe messages)\n"
    o.Deadlock.correct o.Deadlock.probes

let () =
  Printf.printf "wait-for graphs and what the probes discover:\n\n";
  show "ring 0->1->2->3->0" (Deadlock.ring_deadlock ~n:4);
  show "chain 0->1->2->3" (Deadlock.chain_no_deadlock ~n:4);
  show "0->1->2->1 (cycle {1,2})" (Deadlock.of_edges ~n:4 [ (0, 1); (1, 2); (2, 1) ]);
  show "two cycles {0,1} {2,3}"
    (Deadlock.of_edges ~n:4 [ (0, 1); (1, 0); (2, 3); (3, 2) ]);
  Printf.printf
    "\nNote the third row: p0 waits on a deadlocked cycle but is not in it —\n\
     its probe dies inside the cycle and it never 'learns' it is stuck,\n\
     because no chain leads back to it. Detection is exactly knowledge gain.\n"
