(* Quickstart: specify a system, enumerate its computations, and ask
   what its processes know.

     dune exec examples/quickstart.exe

   The system: alice sends "hello" to bob; bob acknowledges. We watch
   knowledge of the fact "alice said hello" travel — alice knows it
   instantly, bob learns it from the message, alice learns that bob
   knows from the acknowledgement (Theorems 4/5 in miniature). *)
open Hpl_core

let alice = Pid.of_int 0
let bob = Pid.of_int 1

let system =
  Spec.make ~n:2 (fun p history ->
      if Pid.equal p alice then
        match history with
        | [] -> [ Spec.Send_to (bob, "hello") ]
        | _ -> [ Spec.Recv_any ]
      else
        match history with
        | [] -> [ Spec.Recv_any ]
        | [ _ ] -> [ Spec.Send_to (alice, "ack") ]
        | _ -> [])

let () =
  Pid.set_name alice "alice";
  Pid.set_name bob "bob";

  (* 1. enumerate every computation of the system (it is finite) *)
  let u = Universe.enumerate system ~depth:4 in
  Format.printf "universe: %a@." Universe.pp_stats u;

  (* 2. a predicate, and knowledge predicates built from it *)
  let said_hello =
    Prop.make "alice said hello" (fun z -> Trace.send_count z alice > 0)
  in
  let bob_knows = Knowledge.knows_p u bob said_hello in
  let alice_knows_bob_knows = Knowledge.knows_p u alice bob_knows in

  (* 3. walk the canonical run and evaluate at each prefix *)
  let hello = Msg.make ~src:alice ~dst:bob ~seq:0 ~payload:"hello" in
  let ack = Msg.make ~src:bob ~dst:alice ~seq:0 ~payload:"ack" in
  let run =
    [
      ("start", Trace.empty);
      ("alice sends", Trace.of_list [ Event.send ~pid:alice ~lseq:0 hello ]);
      ( "bob receives",
        Trace.of_list
          [ Event.send ~pid:alice ~lseq:0 hello; Event.receive ~pid:bob ~lseq:0 hello ]
      );
      ( "bob acks",
        Trace.of_list
          [
            Event.send ~pid:alice ~lseq:0 hello;
            Event.receive ~pid:bob ~lseq:0 hello;
            Event.send ~pid:bob ~lseq:1 ack;
          ] );
      ( "alice receives ack",
        Trace.of_list
          [
            Event.send ~pid:alice ~lseq:0 hello;
            Event.receive ~pid:bob ~lseq:0 hello;
            Event.send ~pid:bob ~lseq:1 ack;
            Event.receive ~pid:alice ~lseq:1 ack;
          ] );
    ]
  in
  Format.printf "@.%-22s %-12s %-12s %-24s@." "after" "fact" "bob knows"
    "alice knows bob knows";
  List.iter
    (fun (label, z) ->
      Format.printf "%-22s %-12b %-12b %-24b@." label
        (Prop.eval said_hello z) (Prop.eval bob_knows z)
        (Prop.eval alice_knows_bob_knows z))
    run;

  (* 4. the knowledge-gain theorem at work: bob's learning required a
     message — extract the chain *)
  let x = List.assoc "alice sends" run in
  let y = List.assoc "bob receives" run in
  let report =
    Transfer.explain_gain u [ Pset.singleton bob ] said_hello ~x ~y
  in
  (match report.Transfer.chain with
  | Some events ->
      Format.printf "@.knowledge gain carried by:@.";
      List.iter (fun e -> Format.printf "  %a@." Event.pp e) events
  | None -> Format.printf "@.no chain (unexpected)@.");

  (* 5. and common knowledge of the fact is never attained *)
  let ck = Common_knowledge.common u said_hello in
  Format.printf "@.common knowledge ever attained: %b (the paper's corollary)@."
    (Universe.fold (fun _ z acc -> acc || Prop.eval ck z) u false)
