(* Post-mortem knowledge analysis: point the exact engine at a log.

     dune exec examples/post_mortem.exe

   A small diffusing computation runs on the simulator; its recorded
   trace is then replayed as a system of its own, whose computations
   are exactly the run's possible interleavings (one per consistent
   cut). Over that universe we can ask, like a log analyst: when could
   each process first be said to KNOW the root had started the job —
   and exactly which message taught it. *)
open Hpl_core
open Hpl_protocols

let () =
  (* a tiny run: 3 processes, ≤ 4 work messages *)
  let params = { Underlying.default with n = 3; budget = 4; seed = 4L } in
  let r = Underlying.run params in
  let z = r.Hpl_sim.Engine.trace in
  Format.printf "recorded run (%d events):@." (Trace.length z);
  List.iteri (fun i e -> Format.printf "  %2d: %a@." i Event.pp e) (Trace.to_list z);

  let n = 3 in
  let stats = Trace_stats.compute ~n z in
  Format.printf "@.profile: causal depth %d, concurrency ratio %.2f, %d consistent cuts@.@."
    stats.Trace_stats.causal_depth stats.Trace_stats.concurrency_ratio
    (Cut.count_consistent ~n z);

  (* the replay universe: every interleaving consistent with the log *)
  let u = Replay.universe_of_trace ~n z in
  Format.printf "replay universe: %a@.@." Universe.pp_stats u;

  let started =
    Prop.make "root started the job" (fun c -> Trace.send_count c (Pid.of_int 0) > 0)
  in
  Format.printf "when did each process first know \"%s\"?@." (Prop.name started);
  List.iter
    (fun i ->
      let p = Pid.of_int i in
      match Replay.knew_at ~n z (Pset.singleton p) started with
      | Some k when k < 0 -> Format.printf "  %a: before any event@." Pid.pp p
      | Some k ->
          Format.printf "  %a: after event %d (%a)@." Pid.pp p k Event.pp
            (Trace.nth z k)
      | None -> Format.printf "  %a: never@." Pid.pp p)
    [ 0; 1; 2 ];

  (* and the mechanism, per Theorem 5: extract the chain that taught p2 *)
  (match Replay.knew_at ~n z (Pset.singleton (Pid.of_int 2)) started with
  | Some k when k >= 0 ->
      let x =
        Trace.of_list (List.filteri (fun i _ -> i < k) (Trace.to_list z))
      in
      let y =
        Trace.of_list (List.filteri (fun i _ -> i <= k) (Trace.to_list z))
      in
      (match Explain.gain u [ Pset.singleton (Pid.of_int 2) ] started ~x ~y with
      | Some report ->
          Format.printf "@.how p2 learned it:@.%a@." Explain.pp report
      | None -> ())
  | _ -> ());
  Format.printf
    "@.(knowledge here is relative to the observed partial order — what a@."
  ;
  Format.printf
    " log analyst can conclude; the paper's theorems hold verbatim on it)@."
