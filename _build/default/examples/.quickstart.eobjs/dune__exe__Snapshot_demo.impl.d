examples/snapshot_demo.ml: Array Hpl_core Hpl_protocols List Printf Snapshot String
