examples/termination_lower_bound.mli:
