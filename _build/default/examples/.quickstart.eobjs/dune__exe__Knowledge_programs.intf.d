examples/knowledge_programs.mli:
