examples/snapshot_demo.mli:
