examples/two_generals_demo.ml: Format Hpl_core Hpl_protocols Pid Two_generals Universe
