examples/post_mortem.mli:
