examples/ordering_demo.ml: Causal_broadcast Hpl_clocks Hpl_core Hpl_protocols Hpl_sim Printf Total_order Trace_stats
