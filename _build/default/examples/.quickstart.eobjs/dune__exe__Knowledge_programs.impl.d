examples/knowledge_programs.ml: Event Format Hpl_core Kprogram List Pid Prop Pset Spec Trace Universe
