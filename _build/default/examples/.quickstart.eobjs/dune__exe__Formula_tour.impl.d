examples/formula_tour.ml: Failure_detector Formula Hpl_core Hpl_protocols List Pid Printf String Token_bus Trace Two_generals Universe
