examples/termination_lower_bound.ml: Array Credit Dijkstra_scholten Hpl_protocols Hpl_sim List Printf Probe Safra Sys Termination Underlying
