examples/token_bus_knowledge.mli:
