examples/deadlock_demo.ml: Array Deadlock Hpl_protocols Printf
