examples/token_bus_knowledge.ml: Event Format Hpl_core Hpl_protocols Iso_diagram List Msg Pid Prop Pset Token_bus Trace Universe
