examples/post_mortem.ml: Cut Event Explain Format Hpl_core Hpl_protocols Hpl_sim List Pid Prop Pset Replay Trace Trace_stats Underlying Universe
