examples/formula_tour.mli:
