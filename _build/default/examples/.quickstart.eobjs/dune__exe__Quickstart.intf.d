examples/quickstart.mli:
