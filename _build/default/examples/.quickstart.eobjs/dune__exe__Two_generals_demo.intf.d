examples/two_generals_demo.mli:
