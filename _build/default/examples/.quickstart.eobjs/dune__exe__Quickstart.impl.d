examples/quickstart.ml: Common_knowledge Event Format Hpl_core Knowledge List Msg Pid Prop Pset Spec Trace Transfer Universe
