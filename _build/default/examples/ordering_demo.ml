(* The delivery-ordering hierarchy, measured: FIFO ⊂ causal ⊂ total.

     dune exec examples/ordering_demo.exe

   The same traffic runs over a deliberately reordering network three
   times: raw (arrival order), causal broadcast (vector-clock
   buffering), and total-order broadcast (a sequencer). Each layer buys
   a stronger agreement about "what happened before what" — the
   currency the paper prices in messages and buffering. *)
open Hpl_core
open Hpl_protocols

let reordering seed =
  { Hpl_sim.Engine.default with fifo = false; min_delay = 1.0; max_delay = 40.0; seed }

let () =
  (* raw arrivals: the engine trace itself violates causal order *)
  let cb = Causal_broadcast.run ~config:(reordering 3L) Causal_broadcast.default in
  let raw_causal =
    Hpl_clocks.Causal_order.delivers_causally ~n:4 cb.Causal_broadcast.trace
  in
  Printf.printf "network: delays 1..40, no FIFO; 4 processes broadcasting\n\n";
  Printf.printf "%-22s %-18s %-14s %s\n" "layer" "guarantee" "extra cost" "verdict";
  Printf.printf "%-22s %-18s %-14s arrivals causal: %b\n" "raw arrivals" "none"
    "none" raw_causal;
  Printf.printf "%-22s %-18s buffered %-5d causal delivery: %b\n" "causal broadcast"
    "causal order" cb.Causal_broadcast.buffered_arrivals
    cb.Causal_broadcast.causal_delivery_ok;
  let t = Total_order.run ~config:(reordering 3L) Total_order.default in
  Printf.printf "%-22s %-18s buffered %-5d identical order: %b\n\n" "total order"
    "same sequence" t.Total_order.gaps_buffered t.Total_order.identical_order;

  (* profile the two traces: total order serializes, so its causal
     depth is larger relative to its size *)
  let profile name z n =
    let s = Trace_stats.compute ~n z in
    Printf.printf "%-22s events=%-4d causal depth=%-4d concurrency=%.2f\n" name
      s.Trace_stats.events s.Trace_stats.causal_depth
      s.Trace_stats.concurrency_ratio
  in
  profile "causal broadcast" cb.Causal_broadcast.trace 4;
  profile "total order" t.Total_order.trace 4;
  Printf.printf
    "\nThe sequencer funnels everything through one process: less\n\
     concurrency, deeper causal chains — order is paid for in exactly\n\
     the coin (information flow) the paper's theorems price.\n"
