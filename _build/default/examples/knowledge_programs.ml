(* Programming with knowledge guards.

     dune exec examples/knowledge_programs.exe

   Rules like "send the acknowledgement as soon as you KNOW the ping
   was sent" compile to ordinary systems: guards are evaluated against
   the universe the compiled program itself generates (a fixpoint,
   computed by iteration). *)
open Hpl_core

let p0 = Pid.of_int 0
let p1 = Pid.of_int 1
let s1 = Pset.singleton p1
let sent = Prop.make "ping sent" (fun z -> Trace.send_count z p0 > 0)

let ack_when_known : Kprogram.t =
 fun p history ->
  if Pid.equal p p0 then
    if history = [] then
      [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Send_to (p1, "ping") } ]
    else [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
  else
    let acked = List.exists Event.is_send history in
    [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
    @
    if acked then []
    else
      [
        {
          Kprogram.guard = Kprogram.know s1 sent;
          intent = Spec.Send_to (p0, "ack");
        };
      ]

let () =
  Pid.set_name p0 "pinger";
  Pid.set_name p1 "acker";
  print_endline "program: acker replies as soon as it KNOWS the ping was sent";
  match Kprogram.solve ~n:2 ~depth:4 ack_when_known with
  | Error e -> print_endline ("no fixpoint: " ^ e)
  | Ok sol ->
      Format.printf "fixpoint found in %d iteration(s); %a@.@."
        sol.Kprogram.iterations Universe.pp_stats sol.Kprogram.universe;
      Format.printf "the solved system's computations:@.";
      Universe.iter
        (fun i z -> Format.printf "  %d: %a@." i Trace.pp z)
        sol.Kprogram.universe;
      (* the guard did its job: the ack never precedes the receive *)
      let ok =
        Universe.fold
          (fun _ z acc ->
            acc
            &&
            match Trace.proj z p1 with
            | first :: _ when Event.is_send first -> false
            | _ -> true)
          sol.Kprogram.universe true
      in
      Format.printf "@.ack always causally after the ping: %b@." ok;
      (* compare with the unrestricted program: guards off, the acker
         could fire blindly *)
      let base =
        Universe.enumerate (Kprogram.unrestricted ~n:2 ack_when_known) ~depth:4
      in
      Format.printf
        "without the knowledge guard the system has %d computations (vs %d):@."
        (Universe.size base)
        (Universe.size sol.Kprogram.universe);
      Format.printf "the guard pruned exactly the premature-ack behaviours.@."
