(* A tour of the formula language: the paper's claims as one-liners.

     dune exec examples/formula_tour.exe

   Each row parses an epistemic-temporal formula, checks it over the
   named system's universe, and prints the verdict — the library as a
   model checker for statements about how processes learn. *)
open Hpl_core
open Hpl_protocols

let verdict u env text =
  match Formula.parse text with
  | Error e -> Printf.sprintf "parse error: %s" e
  | Ok f -> (
      match Formula.check u ~env f with
      | Ok `Valid -> "VALID"
      | Ok (`Fails_at z) ->
          Printf.sprintf "fails (witness: %d-event computation)" (Trace.length z)
      | Error e -> "error: " ^ e)

let () =
  (* token bus, the paper's own example *)
  let tb = Universe.enumerate (Token_bus.spec ~n:5) ~depth:8 in
  let tb_env name =
    let l = String.length name in
    if l > 5 && String.sub name 0 5 = "holds" then
      match int_of_string_opt (String.sub name 5 (l - 5)) with
      | Some i when i < 5 -> Some (Token_bus.holds (Pid.of_int i))
      | _ -> None
    else None
  in
  (* two generals *)
  let tg = Universe.enumerate Two_generals.spec ~depth:9 in
  let tg_env = function
    | "attack" -> Some Two_generals.attack_decided
    | _ -> None
  in
  (* crashable pair *)
  let fd = Universe.enumerate (Failure_detector.crashable_spec ~n:2) ~depth:5 in
  let fd_env = function
    | "crashed0" -> Some (Failure_detector.crashed (Pid.of_int 0))
    | _ -> None
  in
  let rows =
    [
      ("token-bus", tb, tb_env, "AG (holds2 -> K p2 (K p1 (~holds0) & K p3 (~holds4)))");
      ("token-bus", tb, tb_env, "AG (holds2 -> ~holds0)");
      ("token-bus", tb, tb_env, "K p1 (~holds0)");
      ("token-bus", tb, tb_env, "EF holds4");
      ("two-generals", tg, tg_env, "EF (K p1 attack)");
      ("two-generals", tg, tg_env, "EF (K p0 (K p1 attack))");
      ("two-generals", tg, tg_env, "CK attack");
      ("two-generals", tg, tg_env, "AG (K p1 attack -> attack)");
      ("crashable", fd, fd_env, "EF crashed0");
      ("crashable", fd, fd_env, "EF (K p1 crashed0)");
      ("crashable", fd, fd_env, "AG (~K p1 crashed0)");
    ]
  in
  Printf.printf "%-14s %-58s %s\n" "system" "formula" "verdict";
  List.iter
    (fun (name, u, env, text) ->
      Printf.printf "%-14s %-58s %s\n" name text (verdict u env text))
    rows;
  print_newline ();
  print_endline "Highlights: the §4.1 bus assertion is VALID; 'K p1 (~holds0)'";
  print_endline "alone is not (before the token moves, p1 knows nothing);";
  print_endline "each two-generals EF adds one deliverable message; CK never;";
  print_endline "and 'EF (K p1 crashed0)' fails — §5's failure-detection";
  print_endline "impossibility, as a formula."
