(* Chandy–Lamport snapshots on the simulator.

     dune exec examples/snapshot_demo.exe

   Four processes exchange application traffic; process 0 initiates a
   snapshot mid-flight. The recorded global state is verified to be a
   consistent cut (no app message received inside the cut but sent
   outside it) and to conserve messages (sender counts = receiver
   counts + recorded channel contents). *)
open Hpl_protocols

let () =
  let params = { Snapshot.default with n = 4; snapshot_time = 60.0 } in
  let outcome = Snapshot.run params in
  let { Snapshot.states; channel_messages; cut_positions } =
    outcome.Snapshot.recorded
  in
  Printf.printf "snapshot initiated at t=%.0f over %d processes\n\n"
    params.Snapshot.snapshot_time params.Snapshot.n;
  Printf.printf "recorded local states (app messages sent):\n";
  Array.iteri (fun i s -> Printf.printf "  p%d: %d\n" i s) states;
  Printf.printf "\nrecorded channel contents:\n";
  if channel_messages = [] then Printf.printf "  (all channels empty)\n"
  else
    List.iter
      (fun (s, d, c) -> Printf.printf "  p%d -> p%d : %d app message(s)\n" s d c)
      channel_messages;
  Printf.printf "\ncut positions in the recorded trace: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int cut_positions)));
  Printf.printf "\ncut is consistent:        %b\n" outcome.Snapshot.consistent;
  Printf.printf "message conservation:     %b\n" outcome.Snapshot.conservation;
  Printf.printf "trace length:             %d events\n"
    (Hpl_core.Trace.length outcome.Snapshot.trace)
