(* §5's lower bound, live: every sound termination detector pays about
   as many overhead messages as the underlying computation sent — and a
   detector that refuses to pay announces termination that has not
   happened.

     dune exec examples/termination_lower_bound.exe [budget]

   Runs a diffusing computation under four detectors and prints the
   overhead table; then shows the naive probe being caught lying. *)
open Hpl_protocols

let () =
  let budget =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 120
  in
  let base = { Underlying.default with n = 6; budget; seed = 2026L } in
  let config = { Hpl_sim.Engine.default with seed = 2026L } in
  Printf.printf "diffusing workload: %d processes, message budget %d\n\n" base.n
    budget;
  Printf.printf "%s\n" Termination.row_header;
  let reports =
    [
      Dijkstra_scholten.run ~config base;
      Credit.run ~config base;
      Safra.run ~config ~round_delay:2.0 base;
      Probe.run ~config ~wave_delay:2.0 ~mode:`Four_counter base;
      Probe.run ~config ~wave_delay:2.0 ~mode:`Naive base;
    ]
  in
  List.iter (fun r -> Printf.printf "%s\n" (Termination.report_row r)) reports;
  print_newline ();
  List.iter
    (fun r ->
      if not r.Termination.sound then
        Printf.printf
          "!! %s announced %d events before the computation actually terminated\n"
          r.Termination.detector
          (match r.Termination.detection_latency_events with
          | Some l -> -l
          | None -> 0))
    reports;
  Printf.printf
    "\nDijkstra–Scholten meets the paper's bound exactly: one signal per\n\
     work message. The naive probe undercuts the bound — by being wrong.\n"
