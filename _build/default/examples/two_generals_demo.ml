(* The two generals as a knowledge ladder.

     dune exec examples/two_generals_demo.exe

   Each delivered message buys exactly one more level of nested
   knowledge ("B knows", "A knows B knows", ...); common knowledge —
   what coordinated attack would need — is never attained. This is
   Theorem 5 and the common-knowledge corollary, verified exactly. *)
open Hpl_core
open Hpl_protocols

let () =
  Pid.set_name (Pid.of_int 0) "A";
  Pid.set_name (Pid.of_int 1) "B";
  let u = Universe.enumerate Two_generals.spec ~depth:11 in
  Format.printf "universe: %a@.@." Universe.pp_stats u;

  Format.printf "%-22s %-40s@." "delivered messages" "highest nested knowledge";
  for rounds = 0 to 4 do
    let z = Two_generals.ladder_trace ~rounds in
    let depth = Two_generals.max_depth_at u z in
    let rec describe k =
      if k = 0 then "attack decided"
      else
        (if k mod 2 = 1 then "B knows " else "A knows ") ^ describe (k - 1)
    in
    Format.printf "%-22d %-40s@." rounds (describe depth)
  done;

  Format.printf "@.common knowledge of the attack ever attained: %b@."
    (not (Two_generals.common_knowledge_never u));
  Format.printf
    "=> no finite number of acknowledgements coordinates the generals;@.";
  Format.printf
    "   each message buys one level, common knowledge needs all of them.@."
