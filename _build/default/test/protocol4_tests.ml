(* Fourth protocol wave: snapshot-based termination detection,
   Ricart-Agrawala mutex, bully election. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* -- snapshot-based termination ---------------------------------------- *)

let test_snapshot_term_sound_across_seeds () =
  List.iter
    (fun seed ->
      let p = { Underlying.default with n = 5; budget = 50; seed } in
      let r = Snapshot_term.run ~config:{ Hpl_sim.Engine.default with seed } p in
      check tbool "detected" true r.Termination.detected;
      check tbool "sound" true r.Termination.sound)
    [ 1L; 2L; 3L; 5L; 8L ]

let test_snapshot_term_empty_workload () =
  let p = { Underlying.default with budget = 0 } in
  let r = Snapshot_term.run p in
  check tbool "detected" true r.Termination.detected;
  check tbool "sound" true r.Termination.sound

let test_snapshot_term_overhead_exceeds_m_on_trickle () =
  (* marker waves repeat while the trickle lives: overhead >= M *)
  let p =
    { Underlying.default with n = 6; budget = 40; fanout = 1; spawn_prob = 1.0; seed = 9L }
  in
  let r = Snapshot_term.run ~config:{ Hpl_sim.Engine.default with seed = 9L }
      ~attempt_delay:3.0 p
  in
  check tbool "sound" true r.Termination.sound;
  check tbool "overhead >= M" true
    (r.Termination.overhead_msgs >= r.Termination.underlying_msgs)

(* -- ricart-agrawala ------------------------------------------------------ *)

let test_ra_core () =
  List.iter
    (fun seed ->
      let o = Ricart_agrawala.run { Ricart_agrawala.default with seed } in
      check tbool "exclusion" true o.Ricart_agrawala.mutual_exclusion;
      check tbool "served" true o.Ricart_agrawala.all_rounds_served)
    [ 1L; 2L; 3L; 4L ]

let test_ra_message_complexity () =
  List.iter
    (fun n ->
      let o = Ricart_agrawala.run { Ricart_agrawala.default with n } in
      check (Alcotest.float 0.001)
        (Printf.sprintf "2(n-1) at n=%d" n)
        (float_of_int (2 * (n - 1)))
        o.Ricart_agrawala.messages_per_entry)
    [ 2; 3; 4; 6 ]

let test_ra_cheaper_than_lamport () =
  let ra = Ricart_agrawala.run Ricart_agrawala.default in
  let lm = Lamport_mutex.run Lamport_mutex.default in
  check tbool "RA cheaper" true
    (ra.Ricart_agrawala.messages_per_entry < lm.Lamport_mutex.messages_per_entry)

let test_ra_cs_intervals_ordered () =
  let o = Ricart_agrawala.run Ricart_agrawala.default in
  let n = Ricart_agrawala.default.Ricart_agrawala.n in
  let ts = Causality.compute ~n o.Ricart_agrawala.trace in
  let ivs =
    Hpl_clocks.Interval.of_bracketing ~enter:"ra-enter" ~exit:"ra-exit"
      o.Ricart_agrawala.trace
  in
  check tbool "totally ordered" true (Hpl_clocks.Interval.totally_ordered ts ivs)

(* -- bully ------------------------------------------------------------------ *)

let test_bully_no_crash () =
  let o = Bully.run Bully.default in
  check tbool "safe" true o.Bully.safe;
  check Alcotest.(list int) "top wins" [ 4 ] o.Bully.coordinators;
  check Alcotest.(option int) "agreed" (Some 4) o.Bully.agreed_on

let test_bully_crash_top () =
  let o = Bully.run { Bully.default with crash = Some 4 } in
  check tbool "safe" true o.Bully.safe;
  check Alcotest.(list int) "next inherits" [ 3 ] o.Bully.coordinators;
  check Alcotest.(option int) "agreed" (Some 3) o.Bully.agreed_on

let test_bully_crash_middle_harmless () =
  let o = Bully.run { Bully.default with crash = Some 2 } in
  check tbool "safe" true o.Bully.safe;
  check Alcotest.(option int) "top still wins" (Some 4) o.Bully.agreed_on

let test_bully_needs_synchrony () =
  (* delays beyond the timeout break safety: several coordinators *)
  let slow =
    { Hpl_sim.Engine.default with min_delay = 20.0; max_delay = 80.0 }
  in
  let o = Bully.run ~config:slow { Bully.default with ok_timeout = 10.0 } in
  check tbool "unsafe under broken synchrony" false o.Bully.safe

let test_bully_message_bound () =
  (* challenges + oks + coordinator broadcast: O(n^2) worst case *)
  let n = 6 in
  let o = Bully.run { Bully.default with n } in
  check tbool "quadratic bound" true (o.Bully.messages <= n * n + n)

let suite =
  [
    ("snapshot-term sound", `Quick, test_snapshot_term_sound_across_seeds);
    ("snapshot-term empty", `Quick, test_snapshot_term_empty_workload);
    ("snapshot-term trickle >= M", `Quick, test_snapshot_term_overhead_exceeds_m_on_trickle);
    ("RA core", `Quick, test_ra_core);
    ("RA 2(n-1)", `Quick, test_ra_message_complexity);
    ("RA cheaper than Lamport", `Quick, test_ra_cheaper_than_lamport);
    ("RA CS intervals ordered", `Quick, test_ra_cs_intervals_ordered);
    ("bully no crash", `Quick, test_bully_no_crash);
    ("bully crash top", `Quick, test_bully_crash_top);
    ("bully crash middle", `Quick, test_bully_crash_middle_harmless);
    ("bully needs synchrony", `Quick, test_bully_needs_synchrony);
    ("bully message bound", `Quick, test_bully_message_bound);
  ]
