(* Logical clocks: Lamport, vector, matrix, causal delivery. *)
open Hpl_core
open Hpl_clocks

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let p2 = Fixtures.p2

(* the relay computation used in causality tests *)
let m01 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m"
let m12 = Msg.make ~src:p1 ~dst:p2 ~seq:0 ~payload:"m"

let relay =
  Trace.of_list
    [
      Event.send ~pid:p0 ~lseq:0 m01;
      Event.receive ~pid:p1 ~lseq:0 m01;
      Event.send ~pid:p1 ~lseq:1 m12;
      Event.receive ~pid:p2 ~lseq:0 m12;
      Event.internal ~pid:p2 ~lseq:1 "t";
    ]

(* -- lamport ---------------------------------------------------------- *)

let test_lamport_online () =
  let c = Lamport.create () in
  check tint "initial" 0 (Lamport.now c);
  check tint "tick" 1 (Lamport.tick c);
  check tint "send" 2 (Lamport.send c);
  check tint "observe ahead" 11 (Lamport.observe c 10);
  check tint "observe behind" 12 (Lamport.observe c 3)

let test_lamport_stamp () =
  let stamped = Lamport.stamp_trace ~n:3 relay in
  let ts = List.map snd stamped in
  check Alcotest.(list int) "timestamps" [ 1; 2; 3; 4; 5 ] ts

let test_lamport_consistency () =
  check tbool "relay consistent" true (Lamport.consistent_with_causality ~n:3 relay);
  (* also on traces with concurrency *)
  let z =
    Trace.of_list
      [ Event.internal ~pid:p0 ~lseq:0 "a"; Event.internal ~pid:p1 ~lseq:0 "b" ]
  in
  check tbool "concurrent consistent" true (Lamport.consistent_with_causality ~n:2 z)

(* -- vector ------------------------------------------------------------ *)

let test_vector_online () =
  let c = Vector.create ~n:3 ~me:p1 in
  check Alcotest.(array int) "initial" [| 0; 0; 0 |] (Vector.read c);
  check Alcotest.(array int) "tick" [| 0; 1; 0 |] (Vector.tick c);
  let merged = Vector.observe c [| 4; 0; 1 |] in
  check Alcotest.(array int) "observe" [| 4; 2; 1 |] merged

let test_vector_comparisons () =
  check tbool "leq" true (Vector.leq [| 1; 2 |] [| 1; 3 |]);
  check tbool "not leq" false (Vector.leq [| 2; 2 |] [| 1; 3 |]);
  check tbool "lt strict" true (Vector.lt [| 1; 2 |] [| 1; 3 |]);
  check tbool "not lt self" false (Vector.lt [| 1; 2 |] [| 1; 2 |]);
  check tbool "concurrent" true (Vector.concurrent [| 1; 0 |] [| 0; 1 |])

let test_vector_stamp_matches_causality_engine () =
  let stamped = Vector.stamp_trace ~n:3 relay in
  let cts = Causality.compute ~n:3 relay in
  List.iteri
    (fun i (_, v) ->
      check Alcotest.(array int) "agrees with Causality.vt" (Causality.vt cts i) v)
    stamped

let test_vector_characterizes () =
  check tbool "relay" true (Vector.characterizes_causality ~n:3 relay);
  let z =
    Trace.of_list
      [ Event.internal ~pid:p0 ~lseq:0 "a"; Event.internal ~pid:p1 ~lseq:0 "b" ]
  in
  check tbool "concurrent trace" true (Vector.characterizes_causality ~n:2 z)

let test_vector_property_random () =
  (* exactness on all computations of a chatter universe *)
  let u = Universe.enumerate ~mode:`Full (Fixtures.chatter ~n:3 ~k:2) ~depth:4 in
  Universe.iter
    (fun _ z ->
      check tbool "characterizes" true (Vector.characterizes_causality ~n:3 z))
    u

(* -- matrix ------------------------------------------------------------ *)

let test_matrix_relay_second_order () =
  let stamped = Matrix.stamp_trace ~n:3 relay in
  (* after p2 receives the relayed message, p2 knows p1 has seen p0's
     send: entry (p1, p0) ≥ 1 in p2's matrix *)
  let _, m_at_recv2 = List.nth stamped 3 in
  check tbool "p2 knows p1 knows p0 sent" true (m_at_recv2.(1).(0) >= 1);
  (* and p2's own view includes p0's send *)
  check tbool "p2 knows p0 sent" true (m_at_recv2.(2).(0) >= 1)

let test_matrix_online_api () =
  let c = Matrix.create ~n:2 ~me:p0 in
  Matrix.tick c;
  check tint "own count" 1 (Matrix.knows_count c ~about:p0);
  check tint "other zero" 0 (Matrix.knows_count c ~about:p1);
  let payload = Matrix.send c in
  let d = Matrix.create ~n:2 ~me:p1 in
  Matrix.observe d ~src:p0 payload;
  check tbool "d absorbed" true (Matrix.knows_count d ~about:p0 >= 2);
  check tbool "second order" true (Matrix.knows_that_knows d ~mid:p0 ~about:p0 >= 2)

let prefix_upto z i =
  Trace.of_list (List.filteri (fun j _ -> j <= i) (Trace.to_list z))

let test_matrix_veridical () =
  (* matrix entries never exceed the true event counts of the run —
     soundness w.r.t. the actual computation *)
  let u = Universe.enumerate ~mode:`Full (Fixtures.chatter ~n:2 ~k:2) ~depth:4 in
  Universe.iter
    (fun _ z ->
      let stamped = Matrix.stamp_trace ~n:2 z in
      List.iteri
        (fun i (_, m) ->
          let prefix = prefix_upto z i in
          List.iter
            (fun (q, r) ->
              check tbool "entry ≤ truth" true
                (m.(Pid.to_int q).(Pid.to_int r)
                 <= Trace.local_length prefix r))
            [ (p0, p1); (p1, p0); (p0, p0); (p1, p1) ])
        stamped)
    u

let test_matrix_overclaims_knowledge () =
  (* regression for a theory point: causal history is NOT the paper's
     knowledge when message existence does not entail sender history.
     In chatter, p1's matrix after receiving p0's reply says p0 ran ≥2
     events, but an isomorphic computation exists where p0 sent without
     first receiving — so exact knowledge denies it. *)
  let spec = Fixtures.chatter ~n:2 ~k:2 in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  let c1 = Msg.make ~src:p1 ~dst:p0 ~seq:0 ~payload:"c" in
  let c2 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"c" in
  let z =
    Trace.of_list
      [
        Event.send ~pid:p1 ~lseq:0 c1;
        Event.receive ~pid:p0 ~lseq:0 c1;
        Event.send ~pid:p0 ~lseq:1 c2;
        Event.receive ~pid:p1 ~lseq:1 c2;
      ]
  in
  check tbool "z valid" true (Spec.valid spec z);
  let stamped = Matrix.stamp_trace ~n:2 z in
  let _, m = List.nth stamped 3 in
  check tint "matrix claims p0 ≥ 2" 2 m.(1).(0);
  let b = Prop.local_event_count p0 (fun c -> c >= 2) "p0 ran ≥2" in
  check tbool "exact knowledge denies" false
    (Prop.eval (Knowledge.knows u (Pset.singleton p1) b) z)

let test_matrix_exact_under_full_information () =
  (* with full-information payloads, a received message pins down the
     sender's history, so every matrix claim is exact knowledge *)
  let spec = Fixtures.full_info ~n:2 ~k:2 in
  let u = Universe.enumerate ~mode:`Full spec ~depth:4 in
  Universe.iter
    (fun _ z ->
      let stamped = Matrix.stamp_trace ~n:2 z in
      List.iteri
        (fun i (e, m) ->
          let prefix = prefix_upto z i in
          let who = e.Event.pid in
          List.iter
            (fun about ->
              let k = m.(Pid.to_int who).(Pid.to_int about) in
              if k > 0 then begin
                let b =
                  Prop.local_event_count about
                    (fun c -> c >= k)
                    (Printf.sprintf "%s ran ≥%d" (Pid.to_string about) k)
                in
                let kp = Knowledge.knows u (Pset.singleton who) b in
                check tbool "matrix exact under full info" true
                  (Prop.eval kp prefix)
              end)
            [ p0; p1 ])
        stamped)
    u

(* -- dependency clocks -------------------------------------------------- *)

let test_dependency_online_api () =
  let c = Dependency.create ~n:3 ~me:p1 in
  check tint "tick" 1 (Dependency.tick c);
  check tint "send" 2 (Dependency.send c);
  check tint "observe" 3 (Dependency.observe c ~src:p0 5);
  check Alcotest.(array int) "vector" [| 5; 3; 0 |] (Dependency.read c)

let test_dependency_reconstructs_relay () =
  let hb = Dependency.reconstruct ~n:3 relay in
  let ts = Causality.compute ~n:3 relay in
  for i = 0 to 4 do
    for j = 0 to 4 do
      check tbool
        (Printf.sprintf "agrees at %d,%d" i j)
        (Causality.hb ts i j) (hb i j)
    done
  done

let test_dependency_exact_on_universe () =
  (* offline closure = full causality on all computations of a rich
     universe — the cheap-online/exact-offline claim *)
  let u = Universe.enumerate ~mode:`Full (Fixtures.chatter ~n:3 ~k:2) ~depth:4 in
  Universe.iter
    (fun _ z ->
      let len = Trace.length z in
      if len > 0 then begin
        let hb = Dependency.reconstruct ~n:3 z in
        let ts = Causality.compute ~n:3 z in
        for i = 0 to len - 1 do
          for j = 0 to len - 1 do
            if Causality.hb ts i j <> hb i j then
              Alcotest.failf "mismatch %d,%d on %s" i j (Trace.to_string z)
          done
        done
      end)
    u

let test_dependency_vectors_below_full () =
  (* direct-dependency entries never exceed the vector-clock entries:
     they are a lossy compression of the same information *)
  let stamped_dep = Dependency.stamp_trace ~n:3 relay in
  let stamped_vec = Vector.stamp_trace ~n:3 relay in
  List.iter2
    (fun (_, dv) (_, vv) ->
      Array.iteri
        (fun q x -> check tbool "dep ≤ vec" true (x <= vv.(q)))
        dv)
    stamped_dep stamped_vec

(* -- causal delivery --------------------------------------------------- *)

let test_causal_delivery_holds () =
  check tbool "relay causal" true (Causal_order.delivers_causally ~n:3 relay);
  check tbool "relay fifo" true (Causal_order.fifo_per_channel relay)

let causal_violation_trace () =
  (* p0 sends m1 to p2, then m2 to p1; p1 relays to p2; p2 receives the
     relayed (causally later) message before m1. *)
  let m1 = Msg.make ~src:p0 ~dst:p2 ~seq:0 ~payload:"m1" in
  let m2 = Msg.make ~src:p0 ~dst:p1 ~seq:1 ~payload:"m2" in
  let m3 = Msg.make ~src:p1 ~dst:p2 ~seq:0 ~payload:"m3" in
  Trace.of_list
    [
      Event.send ~pid:p0 ~lseq:0 m1;
      Event.send ~pid:p0 ~lseq:1 m2;
      Event.receive ~pid:p1 ~lseq:0 m2;
      Event.send ~pid:p1 ~lseq:1 m3;
      Event.receive ~pid:p2 ~lseq:0 m3;
      Event.receive ~pid:p2 ~lseq:1 m1;
    ]

let test_causal_delivery_violation () =
  let z = causal_violation_trace () in
  check tbool "well-formed" true (Trace.well_formed z);
  check tbool "violates causal order" false (Causal_order.delivers_causally ~n:3 z);
  check tint "one violation" 1 (List.length (Causal_order.violations ~n:3 z))

let test_fifo_violation () =
  let m1 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m1" in
  let m2 = Msg.make ~src:p0 ~dst:p1 ~seq:1 ~payload:"m2" in
  let z =
    Trace.of_list
      [
        Event.send ~pid:p0 ~lseq:0 m1;
        Event.send ~pid:p0 ~lseq:1 m2;
        Event.receive ~pid:p1 ~lseq:0 m2;
        Event.receive ~pid:p1 ~lseq:1 m1;
      ]
  in
  check tbool "fifo violated" false (Causal_order.fifo_per_channel z);
  check tbool "also causal violated" false (Causal_order.delivers_causally ~n:2 z)

let suite =
  [
    ("lamport online", `Quick, test_lamport_online);
    ("lamport stamping", `Quick, test_lamport_stamp);
    ("lamport consistency", `Quick, test_lamport_consistency);
    ("vector online", `Quick, test_vector_online);
    ("vector comparisons", `Quick, test_vector_comparisons);
    ("vector = causality engine", `Quick, test_vector_stamp_matches_causality_engine);
    ("vector characterizes hb", `Quick, test_vector_characterizes);
    ("vector exactness on universe", `Quick, test_vector_property_random);
    ("matrix second order", `Quick, test_matrix_relay_second_order);
    ("matrix online api", `Quick, test_matrix_online_api);
    ("matrix veridical", `Quick, test_matrix_veridical);
    ("matrix overclaims vs knowledge", `Quick, test_matrix_overclaims_knowledge);
    ("matrix exact under full info", `Slow, test_matrix_exact_under_full_information);
    ("dependency online api", `Quick, test_dependency_online_api);
    ("dependency reconstructs relay", `Quick, test_dependency_reconstructs_relay);
    ("dependency exact on universe", `Quick, test_dependency_exact_on_universe);
    ("dependency ≤ vector", `Quick, test_dependency_vectors_below_full);
    ("causal delivery holds", `Quick, test_causal_delivery_holds);
    ("causal delivery violation", `Quick, test_causal_delivery_violation);
    ("fifo violation", `Quick, test_fifo_violation);
  ]
