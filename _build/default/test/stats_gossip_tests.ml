(* Trace profiling and gossip dissemination modes. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let p2 = Fixtures.p2

let m01 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"work:3"
let m12 = Msg.make ~src:p1 ~dst:p2 ~seq:0 ~payload:"work:1"

let relay =
  Trace.of_list
    [
      Event.send ~pid:p0 ~lseq:0 m01;
      Event.receive ~pid:p1 ~lseq:0 m01;
      Event.send ~pid:p1 ~lseq:1 m12;
      Event.receive ~pid:p2 ~lseq:0 m12;
    ]

let indep =
  Trace.of_list
    [ Event.internal ~pid:p0 ~lseq:0 "a"; Event.internal ~pid:p1 ~lseq:0 "b" ]

(* -- trace stats -------------------------------------------------------- *)

let test_stats_counts () =
  let s = Trace_stats.compute ~n:3 relay in
  check tint "events" 4 s.Trace_stats.events;
  check tint "sends" 2 s.Trace_stats.sends;
  check tint "receives" 2 s.Trace_stats.receives;
  check tint "internals" 0 s.Trace_stats.internals;
  check tint "in flight" 0 s.Trace_stats.in_flight_at_end;
  check Alcotest.(list (pair string int)) "tags" [ ("work", 2) ] s.Trace_stats.by_tag

let test_stats_causal_depth_chain () =
  let s = Trace_stats.compute ~n:3 relay in
  (* the relay is one chain: depth = 4, no concurrency *)
  check tint "depth" 4 s.Trace_stats.causal_depth;
  check (Alcotest.float 0.0001) "no concurrency" 0.0 s.Trace_stats.concurrency_ratio

let test_stats_concurrency () =
  let s = Trace_stats.compute ~n:2 indep in
  check tint "depth 1" 1 s.Trace_stats.causal_depth;
  check (Alcotest.float 0.0001) "fully concurrent" 1.0 s.Trace_stats.concurrency_ratio

let test_stats_empty () =
  let s = Trace_stats.compute ~n:2 Trace.empty in
  check tint "depth 0" 0 s.Trace_stats.causal_depth;
  check tint "events 0" 0 s.Trace_stats.events

let test_critical_path () =
  let path = Trace_stats.critical_path ~n:3 relay in
  check tint "length = depth" 4 (List.length path);
  (* consecutive path elements are causally ordered *)
  let ts = Causality.compute ~n:3 relay in
  let positions =
    List.map
      (fun e ->
        match Causality.position_of ts e with
        | Some i -> i
        | None -> Alcotest.fail "path event missing")
      path
  in
  let rec ordered = function
    | a :: b :: rest -> Causality.hb ts a b && ordered (b :: rest)
    | _ -> true
  in
  check tbool "chain ordered" true (ordered positions)

let test_stats_depth_bounds_knowledge () =
  (* causal depth of the two-generals ladder = its event count (pure
     chain), and the max nested-knowledge depth (rounds) is below it *)
  let z = Two_generals.ladder_trace ~rounds:3 in
  let s = Trace_stats.compute ~n:2 z in
  check tint "ladder depth" (Trace.length z) s.Trace_stats.causal_depth;
  let u = Universe.enumerate Two_generals.spec ~depth:9 in
  check tbool "knowledge depth ≤ causal depth" true
    (Two_generals.max_depth_at u z <= s.Trace_stats.causal_depth)

let test_pp_smoke () =
  let s = Trace_stats.compute ~n:3 relay in
  check tbool "renders" true
    (String.length (Format.asprintf "%a" Trace_stats.pp s) > 20)

(* -- gossip modes --------------------------------------------------------- *)

let run_mode mode =
  Gossip.run { Gossip.default with mode; n = 12; seed = 21L }

let test_all_modes_inform_everyone () =
  List.iter
    (fun mode ->
      let o = run_mode mode in
      check tbool "all informed" true o.Gossip.all_informed)
    [ Gossip.Push; Gossip.Pull; Gossip.Push_pull ]

let test_pull_goes_quiet () =
  (* pull stops generating traffic once everyone is informed, so its
     message count is bounded; push keeps pushing until the horizon *)
  let pull = run_mode Gossip.Pull in
  let push = run_mode Gossip.Push in
  check tbool "pull cheaper than push over a long horizon" true
    (pull.Gossip.messages < push.Gossip.messages)

let test_push_pull_fastest () =
  (* push-pull completes dissemination no later than pull alone *)
  let t_all o =
    Array.fold_left
      (fun acc t -> match t with Some t -> max acc t | None -> infinity)
      0.0 o.Gossip.informed_time
  in
  let pp = run_mode Gossip.Push_pull in
  let pull = run_mode Gossip.Pull in
  check tbool "push-pull ≤ pull" true (t_all pp <= t_all pull)

let test_pull_chain_still_holds () =
  (* theorem 5 doesn't care how the rumor moved: chains from origin *)
  let o = run_mode Gossip.Pull in
  let z = o.Gossip.trace in
  let informed = Gossip.informed_positions ~n:12 z in
  Array.iteri
    (fun i pos ->
      if i > 0 && pos <> None then
        check tbool "chain exists" true
          (Chain.exists ~n:12 ~z
             [ Pset.singleton (Pid.of_int 0); Pset.singleton (Pid.of_int i) ]))
    informed

let suite =
  [
    ("stats counts", `Quick, test_stats_counts);
    ("stats causal depth", `Quick, test_stats_causal_depth_chain);
    ("stats concurrency", `Quick, test_stats_concurrency);
    ("stats empty", `Quick, test_stats_empty);
    ("critical path", `Quick, test_critical_path);
    ("depth bounds knowledge", `Quick, test_stats_depth_bounds_knowledge);
    ("stats pp", `Quick, test_pp_smoke);
    ("gossip all modes inform", `Quick, test_all_modes_inform_everyone);
    ("gossip pull goes quiet", `Quick, test_pull_goes_quiet);
    ("gossip push-pull fastest", `Quick, test_push_pull_fastest);
    ("gossip pull chains", `Quick, test_pull_chain_still_holds);
  ]
