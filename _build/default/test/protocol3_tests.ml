(* Third protocol wave: Lamport mutex, causal broadcast, and
   global-predicate detection (possibly/definitely). *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* -- lamport mutex ------------------------------------------------------ *)

let test_mutex_core_properties () =
  List.iter
    (fun seed ->
      let o = Lamport_mutex.run { Lamport_mutex.default with seed } in
      check tbool "exclusion" true o.Lamport_mutex.mutual_exclusion;
      check tbool "all rounds served" true o.Lamport_mutex.all_rounds_served;
      check tbool "timestamp order" true o.Lamport_mutex.timestamp_order_respected)
    [ 1L; 2L; 3L; 4L ]

let test_mutex_message_complexity () =
  (* exactly 3(n-1) messages per CS entry *)
  List.iter
    (fun n ->
      let o = Lamport_mutex.run { Lamport_mutex.default with n } in
      check
        (Alcotest.float 0.001)
        (Printf.sprintf "3(n-1) at n=%d" n)
        (float_of_int (3 * (n - 1)))
        o.Lamport_mutex.messages_per_entry)
    [ 2; 3; 4; 6 ]

let test_mutex_larger_system () =
  let o = Lamport_mutex.run { Lamport_mutex.default with n = 7; rounds = 2 } in
  check tbool "exclusion at n=7" true o.Lamport_mutex.mutual_exclusion;
  check tbool "served at n=7" true o.Lamport_mutex.all_rounds_served

let test_mutex_trace_well_formed () =
  let o = Lamport_mutex.run Lamport_mutex.default in
  check tbool "wf" true (Trace.well_formed o.Lamport_mutex.trace)

(* -- causal broadcast ----------------------------------------------------- *)

let reordering_config seed =
  {
    Hpl_sim.Engine.default with
    fifo = false;
    min_delay = 1.0;
    max_delay = 40.0;
    seed;
  }

let test_cbcast_causal_under_reordering () =
  List.iter
    (fun seed ->
      let o =
        Causal_broadcast.run ~config:(reordering_config seed)
          Causal_broadcast.default
      in
      check tbool "causal" true o.Causal_broadcast.causal_delivery_ok;
      check tbool "all delivered" true o.Causal_broadcast.all_delivered)
    [ 1L; 2L; 3L; 4L; 5L ]

let test_cbcast_buffering_happens () =
  (* with aggressive reordering some arrivals must wait *)
  let buffered =
    List.exists
      (fun seed ->
        let o =
          Causal_broadcast.run ~config:(reordering_config seed)
            Causal_broadcast.default
        in
        o.Causal_broadcast.buffered_arrivals > 0)
      [ 1L; 2L; 3L ]
  in
  check tbool "buffering observed" true buffered

let test_cbcast_message_count () =
  let p = { Causal_broadcast.default with n = 5; broadcasts_per_process = 3 } in
  let o = Causal_broadcast.run p in
  check tint "n(n-1)b messages" (5 * 4 * 3) o.Causal_broadcast.messages

let test_cbcast_fifo_less_buffering () =
  (* FIFO channels already deliver most things causally: buffering under
     FIFO ≤ buffering under reordering for the same seed *)
  let run fifo =
    let config = { (reordering_config 7L) with Hpl_sim.Engine.fifo } in
    (Causal_broadcast.run ~config Causal_broadcast.default)
      .Causal_broadcast.buffered_arrivals
  in
  check tbool "fifo buffers fewer" true (run true <= run false)

(* -- possibly / definitely ------------------------------------------------- *)

let p0 = Fixtures.p0
let p1 = Fixtures.p1

(* both processes tick twice, independently *)
let two_tickers =
  Trace.of_list
    [
      Event.internal ~pid:p0 ~lseq:0 "tick";
      Event.internal ~pid:p1 ~lseq:0 "tick";
      Event.internal ~pid:p0 ~lseq:1 "tick";
      Event.internal ~pid:p1 ~lseq:1 "tick";
    ]

let both_at_one z =
  Trace.local_length z p0 = 1 && Trace.local_length z p1 = 1

let test_possibly_not_definitely () =
  (* "both processes are exactly at their first tick" is possible but
     an observer path may step 0,0 -> 0,1 -> 0,2 -> ... skipping it? No:
     paths go one event at a time; (1,1) can be avoided via (0,2):
     (0,0)->(0,1)->(0,2)->(1,2)->(2,2). So possibly but not definitely. *)
  check tbool "possibly" true (Detect.possibly ~n:2 two_tickers both_at_one);
  check tbool "not definitely" false (Detect.definitely ~n:2 two_tickers both_at_one)

let test_definitely_on_sum () =
  (* "exactly two events happened" is hit by every path (level 2) *)
  let sum_two z = Trace.length z = 2 in
  check tbool "definitely" true (Detect.definitely ~n:2 two_tickers sum_two);
  check Alcotest.(option int) "level" (Some 2)
    (Detect.first_definite_level ~n:2 two_tickers sum_two)

let test_detect_on_message_trace () =
  let m = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m" in
  let z =
    Trace.of_list [ Event.send ~pid:p0 ~lseq:0 m; Event.receive ~pid:p1 ~lseq:0 m ]
  in
  (* "message in flight" must happen on every path: the chain forces it *)
  let in_flight sub = Trace.in_flight sub <> [] in
  check tbool "definitely in flight" true (Detect.definitely ~n:2 z in_flight);
  check tint "one witness" 1 (List.length (Detect.witnesses ~n:2 z in_flight))

let test_definitely_implies_possibly () =
  (* on a batch of random predicates over the ticker trace *)
  List.iter
    (fun k ->
      let b z = Trace.length z = k in
      if Detect.definitely ~n:2 two_tickers b then
        check tbool "def => pos" true (Detect.possibly ~n:2 two_tickers b))
    [ 0; 1; 2; 3; 4 ]

let test_never_possibly () =
  let impossible z = Trace.length z > 100 in
  check tbool "not possibly" false (Detect.possibly ~n:2 two_tickers impossible);
  check tbool "not definitely" false (Detect.definitely ~n:2 two_tickers impossible);
  check Alcotest.(option int) "no level" None
    (Detect.first_definite_level ~n:2 two_tickers impossible)

let test_possibly_vs_actual_run () =
  (* the §5 tracking story, detection-flavoured: the actual interleaving
     never showed both_at_one... or did it? What the observer can say is
     only 'possibly'. Confirm the witness cut is a legal global state:
     its sub-computation is a valid computation of the ticker system. *)
  let spec = Fixtures.ticks ~n:2 ~k:2 in
  List.iter
    (fun c ->
      check tbool "witness is reachable state" true
        (Spec.valid spec (Cut.sub_computation two_tickers c)))
    (Detect.witnesses ~n:2 two_tickers both_at_one)

let suite =
  [
    ("mutex core properties", `Quick, test_mutex_core_properties);
    ("mutex 3(n-1) messages", `Quick, test_mutex_message_complexity);
    ("mutex larger system", `Quick, test_mutex_larger_system);
    ("mutex trace wf", `Quick, test_mutex_trace_well_formed);
    ("cbcast causal under reordering", `Quick, test_cbcast_causal_under_reordering);
    ("cbcast buffering happens", `Quick, test_cbcast_buffering_happens);
    ("cbcast message count", `Quick, test_cbcast_message_count);
    ("cbcast fifo buffers fewer", `Quick, test_cbcast_fifo_less_buffering);
    ("possibly not definitely", `Quick, test_possibly_not_definitely);
    ("definitely on sum", `Quick, test_definitely_on_sum);
    ("detect message in flight", `Quick, test_detect_on_message_trace);
    ("definitely implies possibly", `Quick, test_definitely_implies_possibly);
    ("never possibly", `Quick, test_never_possibly);
    ("possibly witness reachable", `Quick, test_possibly_vs_actual_run);
  ]
