(* Simulator substrate: RNG, priority queue, engine semantics. *)
open Hpl_core
open Hpl_sim

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* -- rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check tbool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    check tbool "in range" true (v >= 0 && v < 10);
    let f = Rng.float r 2.5 in
    check tbool "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_distribution () =
  let r = Rng.create 13L in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Rng.int r 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check tbool "roughly uniform" true (c > 800 && c < 1200))
    counts

let test_rng_split_independent () =
  let r = Rng.create 99L in
  let s = Rng.split r in
  check tbool "different streams" true (Rng.next_int64 r <> Rng.next_int64 s)

let test_rng_copy () =
  let r = Rng.create 5L in
  ignore (Rng.next_int64 r);
  let c = Rng.copy r in
  check tbool "copies agree" true (Rng.next_int64 r = Rng.next_int64 c)

(* -- pqueue -------------------------------------------------------------- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iteri
    (fun i t -> Pqueue.push q ~time:t ~seqno:i "x")
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let times = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (t, _, _) ->
        times := t :: !times;
        drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list (float 0.0)) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ]
    (List.rev !times)

let test_pqueue_tie_break () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:1.0 ~seqno:2 "b";
  Pqueue.push q ~time:1.0 ~seqno:1 "a";
  Pqueue.push q ~time:1.0 ~seqno:3 "c";
  let vals = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (_, _, v) ->
        vals := v :: !vals;
        drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "seqno order" [ "a"; "b"; "c" ] (List.rev !vals)

let test_pqueue_stress () =
  let q = Pqueue.create () in
  let r = Rng.create 3L in
  for i = 1 to 2000 do
    Pqueue.push q ~time:(Rng.float r 100.0) ~seqno:i ()
  done;
  check tint "length" 2000 (Pqueue.length q);
  let prev = ref neg_infinity in
  let rec drain n =
    match Pqueue.pop q with
    | Some (t, _, ()) ->
        check tbool "non-decreasing" true (t >= !prev);
        prev := t;
        drain (n + 1)
    | None -> n
  in
  check tint "drained all" 2000 (drain 0)

(* -- engine --------------------------------------------------------------- *)

(* simple broadcast-once protocol: p0 sends "hi" to everyone at init *)
let broadcast_handlers n =
  {
    Engine.init =
      (fun p ->
        if Pid.to_int p = 0 then
          ( (),
            List.init (n - 1) (fun i ->
                Engine.Send (Pid.of_int (i + 1), "hi")) )
        else ((), []));
    on_message = (fun () ~self:_ ~src:_ ~payload:_ ~now:_ -> ((), []));
    on_timer = (fun () ~self:_ ~tag:_ ~now:_ -> ((), []));
  }

let test_engine_broadcast () =
  let cfg = { Engine.default with Engine.n = 5 } in
  let r = Engine.run cfg (broadcast_handlers 5) in
  check tint "sent" 4 r.Engine.stats.Engine.sent;
  check tint "delivered" 4 r.Engine.stats.Engine.delivered;
  check tbool "trace well-formed" true (Trace.well_formed r.Engine.trace);
  check tint "events" 8 (Trace.length r.Engine.trace)

let test_engine_determinism () =
  let cfg = { Engine.default with Engine.n = 5; seed = 77L } in
  let r1 = Engine.run cfg (broadcast_handlers 5) in
  let r2 = Engine.run cfg (broadcast_handlers 5) in
  check tbool "identical traces" true (Trace.equal r1.Engine.trace r2.Engine.trace)

let test_engine_seed_sensitivity () =
  (* different seeds generally produce different delivery orders for a
     protocol with enough traffic *)
  let handlers =
    {
      Engine.init =
        (fun p ->
          ( (),
            List.init 8 (fun i ->
                Engine.Send (Pid.of_int ((Pid.to_int p + 1 + (i mod 3)) mod 4), "m")) ));
      on_message = (fun () ~self:_ ~src:_ ~payload:_ ~now:_ -> ((), []));
      on_timer = (fun () ~self:_ ~tag:_ ~now:_ -> ((), []));
    }
  in
  let run seed =
    (Engine.run { Engine.default with Engine.n = 4; seed; fifo = false } handlers)
      .Engine.trace
  in
  check tbool "seeds differ" false (Trace.equal (run 1L) (run 2L))

let test_engine_fifo () =
  (* p0 streams 20 messages to p1; FIFO must deliver in order *)
  let handlers =
    {
      Engine.init =
        (fun p ->
          if Pid.to_int p = 0 then
            ((), List.init 20 (fun i -> Engine.Send (Pid.of_int 1, string_of_int i)))
          else ((), []));
      on_message = (fun () ~self:_ ~src:_ ~payload:_ ~now:_ -> ((), []));
      on_timer = (fun () ~self:_ ~tag:_ ~now:_ -> ((), []));
    }
  in
  let r = Engine.run { Engine.default with Engine.n = 2; fifo = true } handlers in
  check tbool "fifo respected" true
    (Hpl_clocks.Causal_order.fifo_per_channel r.Engine.trace);
  (* and without FIFO, the same traffic usually reorders *)
  let r' =
    Engine.run { Engine.default with Engine.n = 2; fifo = false; seed = 9L } handlers
  in
  check tbool "non-fifo reorders (this seed)" false
    (Hpl_clocks.Causal_order.fifo_per_channel r'.Engine.trace)

let test_engine_drops () =
  let handlers =
    {
      Engine.init =
        (fun p ->
          if Pid.to_int p = 0 then
            ((), List.init 100 (fun _ -> Engine.Send (Pid.of_int 1, "m")))
          else ((), []));
      on_message = (fun () ~self:_ ~src:_ ~payload:_ ~now:_ -> ((), []));
      on_timer = (fun () ~self:_ ~tag:_ ~now:_ -> ((), []));
    }
  in
  let r =
    Engine.run { Engine.default with Engine.n = 2; drop_prob = 0.5; seed = 4L } handlers
  in
  check tint "sent all" 100 r.Engine.stats.Engine.sent;
  check tbool "some dropped" true (r.Engine.stats.Engine.dropped > 10);
  check tint "delivered = sent - dropped"
    (100 - r.Engine.stats.Engine.dropped)
    r.Engine.stats.Engine.delivered;
  check tbool "trace still well-formed" true (Trace.well_formed r.Engine.trace)

let test_engine_timers () =
  let handlers =
    {
      Engine.init = (fun _ -> (0, [ Engine.Set_timer (5.0, "t") ]));
      on_message = (fun s ~self:_ ~src:_ ~payload:_ ~now:_ -> (s, []));
      on_timer =
        (fun s ~self:_ ~tag:_ ~now:_ ->
          if s < 3 then (s + 1, [ Engine.Set_timer (5.0, "t"); Engine.Log_internal "tick" ])
          else (s, [ Engine.Log_internal "done" ]));
    }
  in
  let r = Engine.run { Engine.default with Engine.n = 1 } handlers in
  check tint "fired 4 times" 4 r.Engine.stats.Engine.timers_fired;
  check tint "final state" 3 r.Engine.states.(0)

let test_engine_crash_silences () =
  (* p1 echoes everything; crash it at t=50 and stream messages past
     that: no receive events on p1 after its crash event *)
  let handlers =
    {
      Engine.init =
        (fun p ->
          if Pid.to_int p = 0 then
            ((), List.init 20 (fun i ->
                 Engine.Set_timer (10.0 *. float_of_int i, "send")))
          else ((), []));
      on_message =
        (fun () ~self:_ ~src ~payload:_ ~now:_ -> ((), [ Engine.Send (src, "echo") ]));
      on_timer =
        (fun () ~self:_ ~tag:_ ~now:_ -> ((), [ Engine.Send (Pid.of_int 1, "ping") ]));
    }
  in
  let r =
    Engine.run
      { Engine.default with Engine.n = 2; crashes = [ (50.0, 1) ] }
      handlers
  in
  check tbool "p1 crashed" true r.Engine.crashed.(1);
  let after_crash = ref false and violation = ref false in
  List.iter
    (fun e ->
      if Pid.to_int e.Event.pid = 1 then
        match e.Event.kind with
        | Event.Internal "crash" -> after_crash := true
        | _ -> if !after_crash then violation := true)
    (Trace.to_list r.Engine.trace);
  check tbool "crash recorded" true !after_crash;
  check tbool "silent after crash" false !violation

let test_engine_self_message () =
  let handlers =
    {
      Engine.init =
        (fun p -> if Pid.to_int p = 0 then ((), [ Engine.Send (p, "self") ]) else ((), []));
      on_message = (fun () ~self:_ ~src:_ ~payload:_ ~now:_ -> ((), []));
      on_timer = (fun () ~self:_ ~tag:_ ~now:_ -> ((), []));
    }
  in
  let r = Engine.run { Engine.default with Engine.n = 1 } handlers in
  check tint "delivered to self" 1 r.Engine.stats.Engine.delivered;
  check tbool "well-formed" true (Trace.well_formed r.Engine.trace)

let test_engine_max_steps () =
  (* infinite ping-pong halts at the step budget *)
  let handlers =
    {
      Engine.init =
        (fun p -> if Pid.to_int p = 0 then ((), [ Engine.Send (Pid.of_int 1, "m") ]) else ((), []));
      on_message =
        (fun () ~self:_ ~src ~payload:_ ~now:_ -> ((), [ Engine.Send (src, "m") ]));
      on_timer = (fun () ~self:_ ~tag:_ ~now:_ -> ((), []));
    }
  in
  let r = Engine.run { Engine.default with Engine.n = 2; max_steps = 50 } handlers in
  check tint "stopped at budget" 50 r.Engine.stats.Engine.steps

let test_engine_latency_stats () =
  let cfg = { Engine.default with Engine.n = 2; min_delay = 3.0; max_delay = 7.0 } in
  let r = Engine.run cfg (broadcast_handlers 2) in
  check tbool "avg within delay bounds" true
    (r.Engine.stats.Engine.latency_avg >= 3.0
    && r.Engine.stats.Engine.latency_avg <= 7.0);
  check tbool "max ≥ avg" true
    (r.Engine.stats.Engine.latency_max >= r.Engine.stats.Engine.latency_avg);
  (* no deliveries: zeroes *)
  let quiet =
    Engine.run { Engine.default with Engine.n = 1 }
      {
        Engine.init = (fun _ -> ((), []));
        on_message = (fun () ~self:_ ~src:_ ~payload:_ ~now:_ -> ((), []));
        on_timer = (fun () ~self:_ ~tag:_ ~now:_ -> ((), []));
      }
  in
  check (Alcotest.float 0.001) "zero when silent" 0.0
    quiet.Engine.stats.Engine.latency_avg

let test_engine_validates_config () =
  check tbool "bad crash pid" true
    (try
       ignore (Engine.run { Engine.default with crashes = [ (1.0, 9) ] } (broadcast_handlers 4));
       false
     with Invalid_argument _ -> true);
  check tbool "bad delays" true
    (try
       ignore
         (Engine.run
            { Engine.default with min_delay = 5.0; max_delay = 1.0 }
            (broadcast_handlers 4));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("engine validates config", `Quick, test_engine_validates_config);
    ("engine latency stats", `Quick, test_engine_latency_stats);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng distribution", `Quick, test_rng_distribution);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng copy", `Quick, test_rng_copy);
    ("pqueue order", `Quick, test_pqueue_order);
    ("pqueue tie-break", `Quick, test_pqueue_tie_break);
    ("pqueue stress", `Quick, test_pqueue_stress);
    ("engine broadcast", `Quick, test_engine_broadcast);
    ("engine determinism", `Quick, test_engine_determinism);
    ("engine seed sensitivity", `Quick, test_engine_seed_sensitivity);
    ("engine fifo", `Quick, test_engine_fifo);
    ("engine drops", `Quick, test_engine_drops);
    ("engine timers", `Quick, test_engine_timers);
    ("engine crash silences", `Quick, test_engine_crash_silences);
    ("engine self message", `Quick, test_engine_self_message);
    ("engine max steps", `Quick, test_engine_max_steps);
  ]
