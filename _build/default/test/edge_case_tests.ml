(* Edge cases and failure injection across the stack. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* -- single-process systems ---------------------------------------------- *)

let solo = Spec.make ~n:1 (fun _ h -> if List.length h < 2 then [ Spec.Do "t" ] else [])

let test_solo_universe () =
  let u = Universe.enumerate solo ~depth:5 in
  check tint "three computations" 3 (Universe.size u);
  (* knowledge of a solo process = truth *)
  let b = Prop.make "moved" (fun z -> Trace.length z > 0) in
  let k = Knowledge.knows u (Pset.singleton (Pid.of_int 0)) b in
  Universe.iter
    (fun _ z -> check tbool "knows = truth" (Prop.eval b z) (Prop.eval k z))
    u

let test_solo_common_knowledge () =
  (* with one process CK(b) = b: constancy corollary does not apply *)
  let u = Universe.enumerate solo ~depth:5 in
  let b = Prop.make "moved" (fun z -> Trace.length z > 0) in
  let ck = Common_knowledge.common u b in
  Universe.iter
    (fun _ z -> check tbool "CK = b when alone" (Prop.eval b z) (Prop.eval ck z))
    u;
  check tbool "constancy vacuous" true (Common_knowledge.constancy_holds u b)

(* -- empty / degenerate --------------------------------------------------- *)

let test_empty_universe_depth0 () =
  let u = Universe.enumerate solo ~depth:0 in
  check tint "just ε" 1 (Universe.size u);
  let b = Prop.tt in
  check tbool "knows tt at ε" true
    (Prop.eval (Knowledge.knows u (Pset.singleton (Pid.of_int 0)) b) Trace.empty)

let test_formula_on_tiny_universe () =
  let u = Universe.enumerate solo ~depth:0 in
  let env _ = None in
  (match Formula.check u ~env (Result.get_ok (Formula.parse "AG true")) with
  | Ok `Valid -> ()
  | _ -> Alcotest.fail "AG true must be valid");
  match Formula.check u ~env (Result.get_ok (Formula.parse "EX true")) with
  | Ok (`Fails_at _) -> () (* ε has no successors at depth 0 *)
  | _ -> Alcotest.fail "EX true must fail at a leaf"

let test_pset_empty_operations () =
  check tbool "empty union" true (Pset.is_empty (Pset.union Pset.empty Pset.empty));
  check tbool "compl of all" true
    (Pset.is_empty (Pset.compl ~all:(Pset.all 3) (Pset.all 3)));
  check tint "all 0" 0 (Pset.cardinal (Pset.all 0))

let test_stats_single_event () =
  let z = Trace.of_list [ Event.internal ~pid:(Pid.of_int 0) ~lseq:0 "x" ] in
  let s = Trace_stats.compute ~n:1 z in
  check tint "depth 1" 1 s.Trace_stats.causal_depth;
  check (Alcotest.float 0.001) "ratio 0" 0.0 s.Trace_stats.concurrency_ratio

(* -- loss injection on detectors ------------------------------------------ *)

let test_ds_with_losses_sound_maybe_undetected () =
  (* drop 20% of messages: DS may never detect (lost ack) and the
     workload may never terminate (lost work) — but it must never
     announce early *)
  List.iter
    (fun seed ->
      let params = { Underlying.default with n = 5; budget = 40; seed } in
      let config = { Hpl_sim.Engine.default with drop_prob = 0.2; seed } in
      let _, z = Dijkstra_scholten.run_raw ~config params in
      let r =
        Termination.score ~detector:"ds" ~detect_tag:Dijkstra_scholten.detect_tag z
      in
      check tbool "sound under loss" true r.Termination.sound)
    [ 1L; 2L; 3L; 4L; 5L; 6L ]

let test_heartbeat_with_drops_false_suspicions () =
  let config = { Hpl_sim.Engine.default with drop_prob = 0.4 } in
  let o =
    Failure_detector.run ~config
      { Failure_detector.default with crash_time = None; timeout = 12.0 }
  in
  check tbool "drops cause false suspicion" true
    (o.Failure_detector.false_suspicions > 0)

let test_gossip_with_losses_chains_still_hold () =
  (* even with losses, anyone informed has a chain from the origin *)
  let config = { Hpl_sim.Engine.default with drop_prob = 0.3; seed = 9L } in
  let o = Gossip.run ~config { Gossip.default with n = 8 } in
  let z = o.Gossip.trace in
  Array.iteri
    (fun i pos ->
      if i > 0 && pos <> None then
        check tbool "chain under loss" true
          (Chain.exists ~n:8 ~z
             [ Pset.singleton (Pid.of_int 0); Pset.singleton (Pid.of_int i) ]))
    (Gossip.informed_positions ~n:8 z)

(* -- kprogram with formula guards ------------------------------------------ *)

let test_formula_guard () =
  let p0 = Pid.of_int 0 and p1 = Pid.of_int 1 in
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  let env = function "sent" -> Some sent | _ -> None in
  let guard =
    Result.get_ok
      (Kprogram.guard_of_formula env (Result.get_ok (Formula.parse "K p1 sent")))
  in
  let prog : Kprogram.t =
   fun p history ->
    if Pid.equal p p0 then
      if history = [] then
        [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Send_to (p1, "ping") } ]
      else [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
    else
      let acked = List.exists Event.is_send history in
      [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
      @
      if acked then []
      else [ { Kprogram.guard; intent = Spec.Send_to (p0, "ack") } ]
  in
  match Kprogram.solve ~n:2 ~depth:4 prog with
  | Ok sol ->
      Universe.iter
        (fun _ z ->
          match Trace.proj z p1 with
          | first :: _ when Event.is_send first -> Alcotest.fail "ack before knowing"
          | _ -> ())
        sol.Kprogram.universe
  | Error e -> Alcotest.fail e

let suite =
  [
    ("solo universe", `Quick, test_solo_universe);
    ("solo common knowledge", `Quick, test_solo_common_knowledge);
    ("depth-0 universe", `Quick, test_empty_universe_depth0);
    ("formula on tiny universe", `Quick, test_formula_on_tiny_universe);
    ("pset empties", `Quick, test_pset_empty_operations);
    ("stats single event", `Quick, test_stats_single_event);
    ("DS sound under loss", `Quick, test_ds_with_losses_sound_maybe_undetected);
    ("heartbeat drops suspect", `Quick, test_heartbeat_with_drops_false_suspicions);
    ("gossip chains under loss", `Quick, test_gossip_with_losses_chains_still_hold);
    ("formula guards compile", `Quick, test_formula_guard);
  ]
