(* Single-decree Paxos: agreement under contention and crashes. *)
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_single_proposer () =
  let o = Paxos.run Paxos.default in
  check tbool "decided" true o.Paxos.any_decision;
  check tbool "agreement" true o.Paxos.agreement;
  check tbool "validity" true o.Paxos.validity;
  check tint "one ballot suffices" 1 o.Paxos.ballots_started;
  (* everyone learns *)
  check tint "all five decided" 5 (List.length o.Paxos.decided)

let test_contention_safe () =
  List.iter
    (fun proposers ->
      List.iter
        (fun seed ->
          let o = Paxos.run { Paxos.default with proposers; seed } in
          check tbool "agreement" true o.Paxos.agreement;
          check tbool "validity" true o.Paxos.validity;
          check tbool "decided" true o.Paxos.any_decision)
        [ 1L; 2L; 3L; 4L; 5L ])
    [ 2; 3 ]

let test_minority_acceptor_crash () =
  let o =
    Paxos.run
      { Paxos.default with proposers = 2; crash = [ (5.0, 3); (5.0, 4) ] }
  in
  check tbool "agreement" true o.Paxos.agreement;
  check tbool "decided despite crashes" true o.Paxos.any_decision

let test_proposer_crash_value_survives () =
  (* p0 runs a full or partial ballot and crashes; the late second
     proposer must not overwrite: whatever was decided is unique, and
     with p0's ballot having reached acceptors first, p0's value wins
     even though p0 is dead *)
  List.iter
    (fun t ->
      let o =
        Paxos.run { Paxos.default with proposers = 2; crash = [ (t, 0) ] }
      in
      check tbool "agreement" true o.Paxos.agreement;
      check tbool "decided" true o.Paxos.any_decision;
      (* the survivors learned it *)
      check tbool "non-crashed processes decided" true
        (List.exists (fun (p, _) -> p <> 0) o.Paxos.decided))
    [ 16.0; 22.0; 30.0 ]

let test_adoption_observed () =
  (* with the default seed, crashing p0 at t=22 leaves accepted
     (ballot, 1000) state at acceptors; p1's later ballot adopts 1000
     rather than its own 1001 *)
  let o =
    Paxos.run { Paxos.default with proposers = 2; crash = [ (22.0, 0) ] }
  in
  let values = List.sort_uniq compare (List.map snd o.Paxos.decided) in
  check Alcotest.(list int) "p0's value adopted" [ Paxos.proposal_of 0 ] values

let test_reordering_network_safe () =
  List.iter
    (fun seed ->
      let config =
        { Hpl_sim.Engine.default with fifo = false; max_delay = 30.0; seed }
      in
      let o = Paxos.run ~config { Paxos.default with proposers = 3 } in
      check tbool "agreement" true o.Paxos.agreement;
      check tbool "validity" true o.Paxos.validity)
    [ 8L; 9L; 10L ]

let suite =
  [
    ("single proposer", `Quick, test_single_proposer);
    ("contention safe", `Quick, test_contention_safe);
    ("minority acceptor crash", `Quick, test_minority_acceptor_crash);
    ("proposer crash, value survives", `Quick, test_proposer_crash_value_survives);
    ("value adoption observed", `Quick, test_adoption_observed);
    ("safe under reordering", `Quick, test_reordering_network_safe);
  ]
