(* Second protocol wave: token-ring mutex, echo/PIF, Chang-Roberts. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* -- token ring -------------------------------------------------------- *)

let test_ring_mutual_exclusion () =
  List.iter
    (fun seed ->
      let o = Token_ring.run { Token_ring.default with seed } in
      check tbool "mutex" true o.Token_ring.mutual_exclusion;
      check tbool "trace wf" true (Trace.well_formed o.Token_ring.trace))
    [ 1L; 2L; 3L; 4L; 5L ]

let test_ring_liveness () =
  let o = Token_ring.run Token_ring.default in
  check tbool "all served" true o.Token_ring.all_served;
  check tbool "token moved" true (o.Token_ring.token_passes > Token_ring.default.Token_ring.n)

let test_ring_cs_balanced () =
  (* nobody starves relative to others by more than an order of magnitude *)
  let o = Token_ring.run { Token_ring.default with horizon = 2000.0 } in
  let mn = Array.fold_left min max_int o.Token_ring.entries in
  let mx = Array.fold_left max 0 o.Token_ring.entries in
  check tbool "roughly fair" true (mn > 0 && mx <= 10 * mn)

let test_ring_exclusion_checker_catches () =
  (* hand-build an overlapping trace: two processes in CS at once *)
  let bad =
    Trace.of_list
      [
        Event.internal ~pid:(Pid.of_int 0) ~lseq:0 Token_ring.enter_tag;
        Event.internal ~pid:(Pid.of_int 1) ~lseq:0 Token_ring.enter_tag;
        Event.internal ~pid:(Pid.of_int 0) ~lseq:1 Token_ring.exit_tag;
        Event.internal ~pid:(Pid.of_int 1) ~lseq:1 Token_ring.exit_tag;
      ]
  in
  check tbool "overlap caught" false (Token_ring.check_exclusion bad)

(* -- echo ---------------------------------------------------------------- *)

let test_echo_completes () =
  List.iter
    (fun n ->
      let o = Echo.run { Echo.default with n } in
      check tbool "completed" true o.Echo.completed;
      check tbool "all informed" true o.Echo.all_informed;
      check tbool "knowledge chains" true o.Echo.completion_knows_all)
    [ 2; 3; 6; 10 ]

let test_echo_message_complexity () =
  (* exactly 2(n-1)^2 messages on the complete graph *)
  List.iter
    (fun n ->
      let o = Echo.run { Echo.default with n } in
      check tint
        (Printf.sprintf "2(n-1)^2 at n=%d" n)
        (2 * (n - 1) * (n - 1))
        o.Echo.messages)
    [ 2; 4; 6; 8 ]

let test_echo_completion_after_all_receives () =
  (* the pif-done event is causally after every wave receipt *)
  let n = 6 in
  let o = Echo.run { Echo.default with n } in
  let z = o.Echo.trace in
  let ts = Causality.compute ~n z in
  let done_pos = ref None in
  List.iteri
    (fun i e ->
      match e.Event.kind with
      | Event.Internal t when String.equal t Echo.done_tag -> done_pos := Some i
      | _ -> ())
    (Trace.to_list z);
  match !done_pos with
  | None -> Alcotest.fail "no completion"
  | Some dp ->
      List.iteri
        (fun i e ->
          match e.Event.kind with
          | Event.Receive m when Wire.is "wave" m.Msg.payload ->
              check tbool "receipt hb completion" true (Causality.hb ts i dp)
          | _ -> ())
        (Trace.to_list z)

(* -- chang-roberts --------------------------------------------------------- *)

let test_cr_elects_unique_leader () =
  List.iter
    (fun seed ->
      let o = Chang_roberts.run { Chang_roberts.default with seed } in
      check tbool "leader" true (o.Chang_roberts.leader <> None);
      check tbool "agreed" true o.Chang_roberts.agreed;
      check tbool "chain" true o.Chang_roberts.announcement_chain)
    [ 1L; 2L; 3L; 4L; 5L ]

let test_cr_leader_has_max_id () =
  (* with explicit ids, the winner is the process holding the max *)
  let ids = [| 3; 9; 1; 7; 5 |] in
  let o = Chang_roberts.run { Chang_roberts.default with n = 5; ids = Some ids } in
  check Alcotest.(option int) "max id wins" (Some 1) o.Chang_roberts.leader

let test_cr_message_bounds () =
  (* election messages between n and n(n+1)/2; announcement adds n *)
  List.iter
    (fun seed ->
      let n = 8 in
      let o = Chang_roberts.run { Chang_roberts.default with n; seed } in
      let e = o.Chang_roberts.election_messages in
      check tbool "lower bound" true (e >= n);
      check tbool "upper bound" true (e <= n * (n + 1) / 2);
      check tint "announcement ring" (e + n) o.Chang_roberts.messages)
    [ 7L; 8L; 9L ]

let test_cr_worst_case_ids () =
  (* decreasing ids around the ring maximize election messages *)
  let n = 6 in
  let ids = Array.init n (fun i -> n - i) in
  let o = Chang_roberts.run { Chang_roberts.default with n; ids = Some ids } in
  check tbool "leader is p0" true (o.Chang_roberts.leader = Some 0);
  check tbool "agreed" true o.Chang_roberts.agreed

let test_cr_sorted_ids_cheap () =
  (* increasing ids: each elect message dies after one hop except the
     max's full circulation: n-1 + n = 2n - 1 election messages *)
  let n = 6 in
  let ids = Array.init n (fun i -> i + 1) in
  let o = Chang_roberts.run { Chang_roberts.default with n; ids = Some ids } in
  check tint "best case" (2 * n - 1) o.Chang_roberts.election_messages

let suite =
  [
    ("ring mutual exclusion", `Quick, test_ring_mutual_exclusion);
    ("ring liveness", `Quick, test_ring_liveness);
    ("ring fairness", `Quick, test_ring_cs_balanced);
    ("ring checker catches overlap", `Quick, test_ring_exclusion_checker_catches);
    ("echo completes", `Quick, test_echo_completes);
    ("echo message complexity", `Quick, test_echo_message_complexity);
    ("echo completion causality", `Quick, test_echo_completion_after_all_receives);
    ("cr unique leader", `Quick, test_cr_elects_unique_leader);
    ("cr max id wins", `Quick, test_cr_leader_has_max_id);
    ("cr message bounds", `Quick, test_cr_message_bounds);
    ("cr worst case", `Quick, test_cr_worst_case_ids);
    ("cr best case", `Quick, test_cr_sorted_ids_cheap);
  ]
