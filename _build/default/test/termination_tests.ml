(* §5 termination detection: the workload, the four detectors, and the
   message lower bound. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let params ?(n = 5) ?(budget = 60) ?(seed = 3L) () =
  { Underlying.default with n; budget; seed }

let config seed = { Hpl_sim.Engine.default with seed }

(* -- underlying workload ------------------------------------------------- *)

let test_underlying_budget_respected () =
  List.iter
    (fun seed ->
      let r = Underlying.run ~config:(config seed) (params ~budget:40 ()) in
      let m = Underlying.work_messages r.Hpl_sim.Engine.trace in
      check tbool "within budget" true (m <= 40))
    [ 1L; 2L; 3L; 4L ]

let test_underlying_terminates () =
  let r = Underlying.run (params ()) in
  check tbool "terminated" true (Underlying.terminated_by r.Hpl_sim.Engine.trace);
  check tbool "position found" true
    (Underlying.termination_position r.Hpl_sim.Engine.trace <> None)

let test_underlying_trace_well_formed () =
  let r = Underlying.run (params ()) in
  check tbool "well-formed" true (Trace.well_formed r.Hpl_sim.Engine.trace)

let test_termination_position_semantics () =
  let r = Underlying.run (params ()) in
  let z = r.Hpl_sim.Engine.trace in
  match Underlying.termination_position z with
  | None -> Alcotest.fail "should terminate"
  | Some pos ->
      let events = Trace.to_list z in
      (* the event closing the computation is the final work delivery *)
      (if pos > 0 then
         check tbool "last work delivery at pos-1" true
           (match List.nth_opt events (pos - 1) with
           | Some e -> (
               match e.Event.kind with
               | Event.Receive m -> Underlying.is_work m.Msg.payload
               | _ -> false)
           | None -> false));
      (* the prefix of length pos has no work in flight; one shorter does *)
      let prefix = Trace.of_list (List.filteri (fun i _ -> i < pos) events) in
      check tbool "terminated at pos" true (Underlying.terminated_by prefix);
      if pos > 0 then begin
        let shorter = Trace.of_list (List.filteri (fun i _ -> i < pos - 1) events) in
        check tbool "not terminated just before" false (Underlying.terminated_by shorter)
      end

(* -- detectors: correctness across seeds ---------------------------------- *)

let seeds = [ 1L; 2L; 3L; 5L; 8L; 13L ]

let all_detectors p cfg =
  [
    Dijkstra_scholten.run ~config:cfg p;
    Safra.run ~config:cfg p;
    Credit.run ~config:cfg p;
    Probe.run ~config:cfg ~mode:`Four_counter p;
  ]

let test_sound_detectors_across_seeds () =
  List.iter
    (fun seed ->
      let p = params ~seed () in
      List.iter
        (fun r ->
          check tbool (r.Termination.detector ^ " detected") true r.Termination.detected;
          check tbool (r.Termination.detector ^ " sound") true r.Termination.sound;
          check tbool (r.Termination.detector ^ " terminated") true r.Termination.terminated)
        (all_detectors p (config seed)))
    seeds

let test_detectors_on_trivial_workload () =
  (* budget 0: root spawns nothing; detectors must still announce *)
  let p = params ~budget:0 () in
  List.iter
    (fun r ->
      check tbool (r.Termination.detector ^ " detected") true r.Termination.detected;
      check tbool (r.Termination.detector ^ " sound") true r.Termination.sound)
    (all_detectors p (config 1L))

let test_ds_overhead_exactly_m () =
  (* DS sends exactly one signal per work message *)
  List.iter
    (fun seed ->
      let r = Dijkstra_scholten.run ~config:(config seed) (params ~seed ()) in
      check tint "overhead = M" r.Termination.underlying_msgs
        r.Termination.overhead_msgs)
    seeds

let test_credit_overhead_at_most_m () =
  (* one report per work message handled away from the root *)
  List.iter
    (fun seed ->
      let r = Credit.run ~config:(config seed) (params ~seed ()) in
      check tbool "overhead ≤ M" true
        (r.Termination.overhead_msgs <= r.Termination.underlying_msgs))
    seeds

let test_naive_probe_unsound_somewhere () =
  (* the naive probe declares on instantaneous idleness; across seeds it
     must announce early at least once — the §5 cautionary result *)
  let unsound =
    List.exists
      (fun seed ->
        let r = Probe.run ~config:(config seed) ~mode:`Naive (params ~seed ~budget:150 ()) in
        not r.Termination.sound)
      seeds
  in
  check tbool "naive probe caught announcing early" true unsound

let test_detection_latency_nonnegative () =
  List.iter
    (fun r ->
      match r.Termination.detection_latency_events with
      | Some l -> check tbool "latency ≥ 0" true (l >= 0)
      | None -> Alcotest.fail "expected detection")
    (all_detectors (params ()) (config 2L))

(* -- the lower bound (the paper's main quantitative claim) ----------------- *)

let trickle ~budget ~seed =
  (* a sequential chain of work messages: the adversarial regime where
     activity lingers and every detector keeps paying *)
  { Underlying.default with n = 6; budget; fanout = 1; spawn_prob = 1.0; seed }

let test_lower_bound_ds_and_credit () =
  (* for acknowledgement-based detectors, overhead ≥ M - (root's own
     handled messages) on every workload, and = M for DS *)
  List.iter
    (fun seed ->
      let p = trickle ~budget:80 ~seed in
      let ds = Dijkstra_scholten.run ~config:(config seed) p in
      check tbool "ds ratio 1" true
        (ds.Termination.overhead_msgs = ds.Termination.underlying_msgs))
    seeds

let test_lower_bound_safra_trickle () =
  (* on a long trickle with a round delay shorter than the workload's
     lifetime, Safra's token rounds accumulate: overhead ≥ M *)
  let p = trickle ~budget:60 ~seed:21L in
  let r = Safra.run ~config:(config 21L) ~round_delay:2.0 p in
  check tbool "sound" true r.Termination.sound;
  check tbool "overhead ≥ M on adversarial workload" true
    (r.Termination.overhead_msgs >= r.Termination.underlying_msgs)

let test_lower_bound_four_counter_trickle () =
  let p = trickle ~budget:60 ~seed:22L in
  let r = Probe.run ~config:(config 22L) ~wave_delay:2.0 ~mode:`Four_counter p in
  check tbool "sound" true r.Termination.sound;
  check tbool "overhead ≥ M on adversarial workload" true
    (r.Termination.overhead_msgs >= r.Termination.underlying_msgs)

let suite =
  [
    ("underlying budget", `Quick, test_underlying_budget_respected);
    ("underlying terminates", `Quick, test_underlying_terminates);
    ("underlying well-formed", `Quick, test_underlying_trace_well_formed);
    ("termination position", `Quick, test_termination_position_semantics);
    ("detectors sound across seeds", `Slow, test_sound_detectors_across_seeds);
    ("detectors on empty workload", `Quick, test_detectors_on_trivial_workload);
    ("ds overhead = M", `Quick, test_ds_overhead_exactly_m);
    ("credit overhead ≤ M", `Quick, test_credit_overhead_at_most_m);
    ("naive probe unsound", `Quick, test_naive_probe_unsound_somewhere);
    ("latency nonnegative", `Quick, test_detection_latency_nonnegative);
    ("lower bound: ds", `Quick, test_lower_bound_ds_and_credit);
    ("lower bound: safra trickle", `Quick, test_lower_bound_safra_trickle);
    ("lower bound: 4counter trickle", `Quick, test_lower_bound_four_counter_trickle);
  ]
