(* Protocol suites: token bus (§4.1), two generals, tracking (§5),
   failure detection (§5), snapshots, gossip, wire format. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* -- wire --------------------------------------------------------------- *)

let test_wire_roundtrip () =
  List.iter
    (fun (tag, ints) ->
      check Alcotest.(option (pair string (list int))) "roundtrip"
        (Some (tag, ints))
        (Wire.dec (Wire.enc tag ints)))
    [ ("work", [ 3 ]); ("token", [ 0; 1 ]); ("probe", []); ("x", [ -5; 0; 7 ]) ]

let test_wire_malformed () =
  check Alcotest.(option (pair string (list int))) "garbage ints" None
    (Wire.dec "work:abc");
  check tbool "is matches" true (Wire.is "work" "work:1");
  check tbool "is rejects" false (Wire.is "work" "token:1");
  check Alcotest.(option string) "tag" (Some "t") (Wire.tag "t:1,2")

(* -- token bus ------------------------------------------------------------ *)

let tb5 = Universe.enumerate ~mode:`Canonical (Token_bus.spec ~n:5) ~depth:8

let test_token_bus_invariant () =
  let inv = Token_bus.exactly_one_holder_or_flight ~n:5 in
  Universe.iter (fun _ z -> check tbool "invariant" true (Prop.eval inv z)) tb5

let test_token_bus_holds_local () =
  (* "p holds the token" is local to p *)
  List.iter
    (fun i ->
      let p = Pid.of_int i in
      check tbool "local" true
        (Local_pred.is_local tb5 (Pset.singleton p) (Token_bus.holds p)))
    [ 0; 1; 2; 3; 4 ]

let test_token_bus_r_reachable () =
  (* the claim is not vacuous: r = p2 holds the token in some computation *)
  let r_holds = Token_bus.holds (Pid.of_int 2) in
  check tbool "r holds somewhere" true
    (Universe.fold (fun _ z acc -> acc || Prop.eval r_holds z) tb5 false)

let test_token_bus_paper_claim () =
  check tbool "paper claim" true (Token_bus.check_paper_claim tb5)

let test_token_bus_claim_fails_without_token () =
  (* sanity: the assertion is not a tautology — it fails somewhere
     (e.g. at the initial computation, where q knows nothing) *)
  let assertion = Token_bus.paper_assertion tb5 in
  check tbool "fails at ε" false (Prop.eval assertion Trace.empty)

let test_token_bus_holder_at () =
  check Alcotest.(option int) "initially p0" (Some 0)
    (Option.map Pid.to_int (Token_bus.holder_at ~n:5 Trace.empty));
  (* after p0 sends, nobody holds *)
  let m = Msg.make ~src:(Pid.of_int 0) ~dst:(Pid.of_int 1) ~seq:0 ~payload:"token" in
  let z = Trace.of_list [ Event.send ~pid:(Pid.of_int 0) ~lseq:0 m ] in
  check Alcotest.(option int) "in flight" None
    (Option.map Pid.to_int (Token_bus.holder_at ~n:5 z));
  let z = Trace.snoc z (Event.receive ~pid:(Pid.of_int 1) ~lseq:0 m) in
  check Alcotest.(option int) "now p1" (Some 1)
    (Option.map Pid.to_int (Token_bus.holder_at ~n:5 z))

let test_token_bus_small_sizes () =
  List.iter
    (fun n ->
      let u = Universe.enumerate ~mode:`Canonical (Token_bus.spec ~n) ~depth:5 in
      let inv = Token_bus.exactly_one_holder_or_flight ~n in
      Universe.iter (fun _ z -> check tbool "invariant" true (Prop.eval inv z)) u)
    [ 2; 3 ];
  Alcotest.check_raises "n=1 rejected"
    (Invalid_argument "Token_bus.spec: need at least two processes") (fun () ->
      ignore (Token_bus.spec ~n:1))

(* -- two generals ---------------------------------------------------------- *)

let tg = Universe.enumerate ~mode:`Canonical Two_generals.spec ~depth:9

let test_two_generals_ladder_monotone () =
  (* after k delivered messages the depth-k ladder holds and k+1 fails *)
  List.iter
    (fun rounds ->
      let z = Two_generals.ladder_trace ~rounds in
      check tbool "trace valid" true (Spec.valid Two_generals.spec z);
      check tint
        (Printf.sprintf "depth at %d rounds" rounds)
        rounds
        (Two_generals.max_depth_at tg z))
    [ 0; 1; 2; 3 ]

let test_two_generals_ck_never () =
  check tbool "common knowledge never attained" true
    (Two_generals.common_knowledge_never tg)

let test_two_generals_gain_chain () =
  (* between the bare decision (rounds 0: B knows nothing) and rounds 2,
     "A knows B knows attack" is gained; theorem 5 promises a chain
     <B, A> in the gap — extract it *)
  let x = Two_generals.ladder_trace ~rounds:0 in
  let y = Two_generals.ladder_trace ~rounds:2 in
  check tbool "x prefix of y" true (Trace.is_prefix x y);
  let a = Pset.singleton (Pid.of_int 0) and b = Pset.singleton (Pid.of_int 1) in
  let r = Transfer.explain_gain tg [ a; b ] Two_generals.attack_decided ~x ~y in
  check tbool "premise" true r.Transfer.premise;
  check tbool "chain found" true (r.Transfer.chain <> None)

(* -- tracking ---------------------------------------------------------------- *)

let silent = Universe.enumerate ~mode:`Canonical (Tracking.silent_spec ~n:2 ~flips:2 ~ticks:2) ~depth:4
let notify = Universe.enumerate ~mode:`Canonical (Tracking.notify_spec ~flips:2) ~depth:8

let test_tracking_bit_local () =
  check tbool "bit local to p0" true
    (Local_pred.is_local silent (Pset.singleton (Pid.of_int 0)) Tracking.bit)

let test_tracking_silent_unsure () =
  check tbool "unsure after flip" true
    (Tracking.tracker_always_unsure_after_flip silent)

let test_tracking_unsure_while_changing () =
  check tbool "silent" true (Tracking.unsure_while_changing silent);
  check tbool "notify" true (Tracking.unsure_while_changing notify)

let test_tracking_change_condition () =
  check tbool "silent" true
    (Tracking.change_requires_known_unsureness silent ~tracker:(Pid.of_int 1));
  check tbool "notify" true
    (Tracking.change_requires_known_unsureness notify ~tracker:(Pid.of_int 1))

let test_tracking_notify_can_know () =
  (* the notify protocol does let p1 learn the value between flips:
     p1 knows bit after receiving an odd notification *)
  let k1 = Knowledge.knows notify (Pset.singleton (Pid.of_int 1)) Tracking.bit in
  check tbool "p1 sometimes knows" true
    (Universe.fold (fun _ z acc -> acc || Prop.eval k1 z) notify false)

(* -- failure detection ---------------------------------------------------- *)

let test_failure_impossibility () =
  let u = Universe.enumerate ~mode:`Canonical (Failure_detector.crashable_spec ~n:2) ~depth:5 in
  check tbool "p1 never knows p0 crashed" true
    (Failure_detector.nobody_ever_knows u ~observer:(Pid.of_int 1)
       ~subject:(Pid.of_int 0));
  check tbool "p0 never knows p1 crashed" true
    (Failure_detector.nobody_ever_knows u ~observer:(Pid.of_int 0)
       ~subject:(Pid.of_int 1))

let test_failure_crashed_local () =
  let u = Universe.enumerate ~mode:`Canonical (Failure_detector.crashable_spec ~n:2) ~depth:4 in
  check tbool "crash local to p0" true
    (Local_pred.is_local u (Pset.singleton (Pid.of_int 0))
       (Failure_detector.crashed (Pid.of_int 0)))

let test_heartbeat_with_synchrony () =
  (* timeout exceeds heartbeat period + max delay: exact detection *)
  let o = Failure_detector.run Failure_detector.default in
  check tint "no false suspicion" 0 o.Failure_detector.false_suspicions;
  check tint "no miss" 0 o.Failure_detector.missed;
  check tbool "detected after crash" true
    (match o.Failure_detector.detection_time with
    | Some t -> t > 100.0
    | None -> false)

let test_heartbeat_no_crash_no_suspicion () =
  let o =
    Failure_detector.run { Failure_detector.default with crash_time = None }
  in
  check tint "quiet" 0 o.Failure_detector.false_suspicions;
  check tbool "nothing detected" true (o.Failure_detector.detection_time = None)

let test_heartbeat_timeout_too_short () =
  (* timeout below the heartbeat period forces false suspicions *)
  let o =
    Failure_detector.run
      { Failure_detector.default with timeout = 2.0; crash_time = None }
  in
  check tbool "false suspicions appear" true (o.Failure_detector.false_suspicions > 0)

(* -- snapshot ----------------------------------------------------------------- *)

let test_snapshot_consistent () =
  let o = Snapshot.run Snapshot.default in
  check tbool "consistent" true o.Snapshot.consistent;
  check tbool "conservation" true o.Snapshot.conservation

let test_snapshot_across_seeds () =
  List.iter
    (fun seed ->
      let config = { Hpl_sim.Engine.default with seed } in
      let o = Snapshot.run ~config Snapshot.default in
      check tbool "consistent" true o.Snapshot.consistent;
      check tbool "conservation" true o.Snapshot.conservation)
    [ 2L; 3L; 4L; 5L; 6L ]

let test_snapshot_cut_checker_rejects_bad_cut () =
  let o = Snapshot.run Snapshot.default in
  (* sabotage: move process 1's cut point to the very beginning — app
     messages received before the real cut now cross it *)
  let bad = Array.copy o.Snapshot.recorded.Snapshot.cut_positions in
  bad.(1) <- 0;
  (* the trace has app traffic into p1 before its recording, so the
     doctored cut must be inconsistent unless p1 recorded first *)
  let originally_first = o.Snapshot.recorded.Snapshot.cut_positions.(1) = 0 in
  if not originally_first then
    check tbool "doctored cut caught" false
      (Snapshot.cut_is_consistent ~n:4 o.Snapshot.trace ~cut_positions:bad)

(* -- gossip ---------------------------------------------------------------- *)

let test_gossip_everyone_learns () =
  let o = Gossip.run Gossip.default in
  check tbool "all informed" true o.Gossip.all_informed;
  check tbool "messages flowed" true (o.Gossip.messages > 0);
  check tbool "depth-2 reached" true (o.Gossip.depth2_complete_time <> None)

let test_gossip_chain_to_learner () =
  (* every informed process has a process chain from the origin — the
     operational Theorem 5 *)
  let o = Gossip.run { Gossip.default with n = 6 } in
  let z = o.Gossip.trace in
  let positions = Gossip.informed_positions ~n:6 z in
  Array.iteri
    (fun i pos ->
      match pos with
      | Some _ when i > 0 ->
          check tbool
            (Printf.sprintf "chain to p%d" i)
            true
            (Chain.exists ~n:6 ~z
               [ Pset.singleton (Pid.of_int 0); Pset.singleton (Pid.of_int i) ])
      | _ -> ())
    positions

let test_gossip_depth2_after_informed () =
  let o = Gossip.run Gossip.default in
  let latest_informed =
    Array.fold_left
      (fun acc t -> match t with Some t -> max acc t | None -> acc)
      0.0 o.Gossip.informed_time
  in
  match o.Gossip.depth2_complete_time with
  | Some t2 -> check tbool "depth2 not before last informed" true (t2 >= latest_informed)
  | None -> Alcotest.fail "expected depth-2 completion"

let suite =
  [
    ("wire roundtrip", `Quick, test_wire_roundtrip);
    ("wire malformed", `Quick, test_wire_malformed);
    ("token bus invariant", `Quick, test_token_bus_invariant);
    ("token bus holds local", `Quick, test_token_bus_holds_local);
    ("token bus r reachable", `Quick, test_token_bus_r_reachable);
    ("token bus paper claim", `Quick, test_token_bus_paper_claim);
    ("token bus claim not vacuous", `Quick, test_token_bus_claim_fails_without_token);
    ("token bus holder_at", `Quick, test_token_bus_holder_at);
    ("token bus small sizes", `Quick, test_token_bus_small_sizes);
    ("two generals ladder", `Slow, test_two_generals_ladder_monotone);
    ("two generals CK never", `Quick, test_two_generals_ck_never);
    ("two generals gain chain", `Quick, test_two_generals_gain_chain);
    ("tracking bit local", `Quick, test_tracking_bit_local);
    ("tracking silent unsure", `Quick, test_tracking_silent_unsure);
    ("tracking unsure while changing", `Quick, test_tracking_unsure_while_changing);
    ("tracking change condition", `Quick, test_tracking_change_condition);
    ("tracking notify can know", `Quick, test_tracking_notify_can_know);
    ("failure impossibility", `Quick, test_failure_impossibility);
    ("failure crashed local", `Quick, test_failure_crashed_local);
    ("heartbeat synchrony", `Quick, test_heartbeat_with_synchrony);
    ("heartbeat quiet", `Quick, test_heartbeat_no_crash_no_suspicion);
    ("heartbeat short timeout", `Quick, test_heartbeat_timeout_too_short);
    ("snapshot consistent", `Quick, test_snapshot_consistent);
    ("snapshot across seeds", `Quick, test_snapshot_across_seeds);
    ("snapshot rejects bad cut", `Quick, test_snapshot_cut_checker_rejects_bad_cut);
    ("gossip everyone learns", `Quick, test_gossip_everyone_learns);
    ("gossip chain to learner", `Quick, test_gossip_chain_to_learner);
    ("gossip depth2 ordering", `Quick, test_gossip_depth2_after_informed);
  ]
