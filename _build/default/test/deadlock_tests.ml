(* Chandy-Misra-Haas deadlock detection. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool

let test_ring_detects () =
  List.iter
    (fun n ->
      let o = Deadlock.run (Deadlock.ring_deadlock ~n) in
      check tbool "correct" true o.Deadlock.correct;
      check tbool "everyone declared" true (Array.for_all Fun.id o.Deadlock.declared))
    [ 2; 3; 5; 8 ]

let test_chain_no_false_positive () =
  List.iter
    (fun n ->
      let o = Deadlock.run (Deadlock.chain_no_deadlock ~n) in
      check tbool "correct" true o.Deadlock.correct;
      check tbool "nobody declared" true
        (Array.for_all not o.Deadlock.declared))
    [ 2; 4; 7 ]

let test_partial_cycle () =
  (* 0 -> 1 -> 2 -> 1 (cycle {1,2}), 3 active.
     Only cycle members declare; 0 waits on the cycle but is not in it. *)
  let o = Deadlock.run (Deadlock.of_edges ~n:4 [ (0, 1); (1, 2); (2, 1) ]) in
  check tbool "correct" true o.Deadlock.correct;
  check Alcotest.(list bool) "exact membership" [ false; true; true; false ]
    (Array.to_list o.Deadlock.declared)

let test_two_disjoint_cycles () =
  let o =
    Deadlock.run (Deadlock.of_edges ~n:6 [ (0, 1); (1, 0); (3, 4); (4, 5); (5, 3) ])
  in
  check tbool "correct" true o.Deadlock.correct;
  check Alcotest.(list bool) "both cycles" [ true; true; false; true; true; true ]
    (Array.to_list o.Deadlock.declared)

let test_and_model_multi_edges () =
  (* 0 waits for both 1 and 2; only the 0-2 loop is a cycle *)
  let o = Deadlock.run (Deadlock.of_edges ~n:3 [ (0, 1); (0, 2); (2, 0) ]) in
  check tbool "correct" true o.Deadlock.correct;
  check Alcotest.(list bool) "cycle = {0,2}" [ true; false; true ]
    (Array.to_list o.Deadlock.declared)

let test_probe_is_a_chain_around_the_cycle () =
  (* the detection proof object: a process chain from the initiator
     around the cycle back to it *)
  let n = 4 in
  let o = Deadlock.run (Deadlock.ring_deadlock ~n) in
  let z = o.Deadlock.trace in
  check tbool "chain 0->1->2->3->0" true
    (Chain.exists ~n ~z
       (Chain.of_pids
          [ Pid.of_int 0; Pid.of_int 1; Pid.of_int 2; Pid.of_int 3; Pid.of_int 0 ]))

let test_probe_overhead_linear_in_edges () =
  (* each blocked process forwards each initiator's probe at most once:
     probes ≤ initiators × edges + initiators *)
  let n = 6 in
  let o = Deadlock.run (Deadlock.ring_deadlock ~n) in
  check tbool "probe bound" true (o.Deadlock.probes <= n * (n + 1))

let suite =
  [
    ("ring detects", `Quick, test_ring_detects);
    ("chain no false positive", `Quick, test_chain_no_false_positive);
    ("partial cycle", `Quick, test_partial_cycle);
    ("two disjoint cycles", `Quick, test_two_disjoint_cycles);
    ("AND model multi edges", `Quick, test_and_model_multi_edges);
    ("probe is a chain", `Quick, test_probe_is_a_chain_around_the_cycle);
    ("probe overhead", `Quick, test_probe_overhead_linear_in_edges);
  ]
