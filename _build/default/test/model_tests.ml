(* Tests for the §2 model: Pid, Pset, Msg, Event, Trace, Spec. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let p2 = Fixtures.p2

(* -- pid / pset ------------------------------------------------------ *)

let test_pid_basics () =
  check tint "roundtrip" 7 (Pid.to_int (Pid.of_int 7));
  check tbool "equal" true (Pid.equal p0 (Pid.of_int 0));
  check tbool "not equal" false (Pid.equal p0 p1);
  Alcotest.check_raises "negative" (Invalid_argument "Pid.of_int: negative index")
    (fun () -> ignore (Pid.of_int (-1)))

let test_pid_names () =
  let p = Pid.of_int 42 in
  check Alcotest.string "default" "p42" (Pid.to_string p);
  Pid.set_name p "coordinator";
  check Alcotest.string "named" "coordinator" (Pid.to_string p);
  check Alcotest.(option string) "name" (Some "coordinator") (Pid.name p)

let test_pset_algebra () =
  let d = Pset.all 4 in
  check tint "all 4" 4 (Pset.cardinal d);
  let p = Pset.of_list [ p0; p1 ] in
  let q = Pset.compl ~all:d p in
  check tint "compl" 2 (Pset.cardinal q);
  check tbool "disjoint" true (Pset.disjoint p q);
  check tbool "union is all" true (Pset.equal d (Pset.union p q));
  check tbool "subset" true (Pset.subset p d);
  check tbool "not subset" false (Pset.subset d p);
  check tbool "empty inter" true (Pset.is_empty (Pset.inter p q))

let test_pset_compl_involution () =
  let d = Pset.all 5 in
  let p = Pset.of_list [ p1; p2 ] in
  check tbool "compl involutive" true
    (Pset.equal p (Pset.compl ~all:d (Pset.compl ~all:d p)))

(* -- msg / event ------------------------------------------------------ *)

let test_msg_identity () =
  let m1 = Fixtures.msg ~src:p0 ~dst:p1 ~seq:0 ~payload:"x" in
  let m2 = Fixtures.msg ~src:p0 ~dst:p1 ~seq:0 ~payload:"x" in
  let m3 = Fixtures.msg ~src:p0 ~dst:p1 ~seq:1 ~payload:"x" in
  check tbool "structural equal" true (Msg.equal m1 m2);
  check tbool "distinguished by seq" false (Msg.equal m1 m3);
  check tbool "key" true (Msg.key m1 = (p0, 0))

let test_event_constructors () =
  let m = Fixtures.msg ~src:p0 ~dst:p1 ~seq:0 ~payload:"x" in
  let s = Event.send ~pid:p0 ~lseq:0 m in
  let r = Event.receive ~pid:p1 ~lseq:0 m in
  let i = Event.internal ~pid:p0 ~lseq:1 "tick" in
  check tbool "send is send" true (Event.is_send s);
  check tbool "recv is recv" true (Event.is_receive r);
  check tbool "internal" true (Event.is_internal i);
  check tbool "message of send" true
    (match Event.message s with Some m' -> Msg.equal m m' | None -> false);
  check tbool "no message" true (Event.message i = None);
  Alcotest.check_raises "send pid mismatch"
    (Invalid_argument "Event.send: pid <> msg.src") (fun () ->
      ignore (Event.send ~pid:p1 ~lseq:0 m));
  Alcotest.check_raises "receive pid mismatch"
    (Invalid_argument "Event.receive: pid <> msg.dst") (fun () ->
      ignore (Event.receive ~pid:p0 ~lseq:0 m))

let test_event_on () =
  let e = Event.internal ~pid:p1 ~lseq:0 "t" in
  check tbool "on {p1}" true (Event.on e (Pset.singleton p1));
  check tbool "not on {p0}" false (Event.on e (Pset.singleton p0));
  check tbool "on D" true (Event.on e (Pset.all 2))

let test_event_order_total () =
  let m = Fixtures.msg ~src:p0 ~dst:p1 ~seq:0 ~payload:"x" in
  let es =
    [
      Event.send ~pid:p0 ~lseq:0 m;
      Event.receive ~pid:p1 ~lseq:0 m;
      Event.internal ~pid:p0 ~lseq:1 "a";
      Event.internal ~pid:p0 ~lseq:1 "b";
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Event.compare a b and c' = Event.compare b a in
          check tbool "antisymmetric" true
            (if Event.equal a b then c = 0 && c' = 0 else c * c' < 0))
        es)
    es

(* -- trace ------------------------------------------------------------ *)

let mk_send ~src ~dst ~lseq ~seq payload =
  Event.send ~pid:src ~lseq (Fixtures.msg ~src ~dst ~seq ~payload)

let mk_recv ~src ~dst ~lseq ~seq payload =
  Event.receive ~pid:dst ~lseq (Fixtures.msg ~src ~dst ~seq ~payload)

let simple_trace () =
  (* p0 sends m to p1; p1 receives; p0 does an internal step *)
  Trace.of_list
    [
      mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m";
      mk_recv ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m";
      Event.internal ~pid:p0 ~lseq:1 "t";
    ]

let test_trace_basics () =
  let z = simple_trace () in
  check tint "length" 3 (Trace.length z);
  check tbool "not empty" false (Trace.is_empty z);
  check tint "local p0" 2 (Trace.local_length z p0);
  check tint "local p1" 1 (Trace.local_length z p1);
  check tint "sends by p0" 1 (Trace.send_count z p0);
  check tint "sends by p1" 0 (Trace.send_count z p1);
  check tbool "last is internal" true
    (match Trace.last z with Some e -> Event.is_internal e | None -> false)

let test_trace_snoc_of_list_agree () =
  let es = Trace.to_list (simple_trace ()) in
  let built = List.fold_left Trace.snoc Trace.empty es in
  check tbool "snoc = of_list" true (Trace.equal built (Trace.of_list es))

let test_trace_projection () =
  let z = simple_trace () in
  check tint "proj p0 len" 2 (List.length (Trace.proj z p0));
  check tint "proj p1 len" 1 (List.length (Trace.proj z p1));
  check tbool "proj order" true
    (match Trace.proj z p0 with
    | [ a; b ] -> Event.is_send a && Event.is_internal b
    | _ -> false);
  check tint "proj_set D" 3 (List.length (Trace.proj_set z (Pset.all 2)));
  check tint "proj_set empty" 0 (List.length (Trace.proj_set z Pset.empty))

let test_trace_prefix_suffix () =
  let z = simple_trace () in
  let x = Trace.of_list [ List.hd (Trace.to_list z) ] in
  check tbool "x <= z" true (Trace.is_prefix x z);
  check tbool "z not <= x" false (Trace.is_prefix z x);
  check tbool "empty <= z" true (Trace.is_prefix Trace.empty z);
  check tbool "z <= z" true (Trace.is_prefix z z);
  check tint "suffix len" 2 (List.length (Trace.suffix ~prefix:x z));
  check tint "(z,z) empty" 0 (List.length (Trace.suffix ~prefix:z z));
  check tbool "append restores" true
    (Trace.equal z (Trace.append x (Trace.suffix ~prefix:x z)))

let test_trace_prefix_not_just_length () =
  let a = Trace.of_list [ Event.internal ~pid:p0 ~lseq:0 "a" ] in
  let b = Trace.of_list [ Event.internal ~pid:p1 ~lseq:0 "b" ] in
  check tbool "different singleton not prefix" false (Trace.is_prefix a b)

let test_trace_messages () =
  let z = simple_trace () in
  check tint "sent" 1 (List.length (Trace.sent z));
  check tint "received" 1 (List.length (Trace.received z));
  check tint "in flight" 0 (List.length (Trace.in_flight z));
  let partial = Trace.of_list [ mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m" ] in
  check tint "in flight 1" 1 (List.length (Trace.in_flight partial))

let test_trace_well_formed () =
  check tbool "valid trace" true (Trace.well_formed (simple_trace ()));
  check tbool "empty wf" true (Trace.well_formed Trace.empty);
  (* receive before send *)
  let bad1 = Trace.of_list [ mk_recv ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m" ] in
  check tbool "recv before send" false (Trace.well_formed bad1);
  (* lseq gap *)
  let bad2 = Trace.of_list [ Event.internal ~pid:p0 ~lseq:1 "t" ] in
  check tbool "lseq gap" false (Trace.well_formed bad2);
  (* duplicate send of same key *)
  let bad3 =
    Trace.of_list
      [
        mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m";
        mk_send ~src:p0 ~dst:p1 ~lseq:1 ~seq:0 "m";
      ]
  in
  check tbool "dup send key" false (Trace.well_formed bad3);
  (* double receive *)
  let bad4 =
    Trace.of_list
      [
        mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m";
        mk_recv ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m";
        Event.receive ~pid:p1 ~lseq:1 (Fixtures.msg ~src:p0 ~dst:p1 ~seq:0 ~payload:"m");
      ]
  in
  check tbool "double receive" false (Trace.well_formed bad4);
  (* seq inconsistent with send count *)
  let bad5 = Trace.of_list [ mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:3 "m" ] in
  check tbool "seq gap" false (Trace.well_formed bad5)

let test_trace_prefix_closed_wf () =
  (* every prefix of a well-formed trace is well-formed (the model's
     prefix-closure property, §2) *)
  let z = simple_trace () in
  let rec prefixes acc t =
    let acc = t :: acc in
    match Trace.to_list t with
    | [] -> acc
    | es -> prefixes acc (Trace.of_list (List.filteri (fun i _ -> i < List.length es - 1) es))
  in
  List.iter
    (fun x -> check tbool "prefix wf" true (Trace.well_formed x))
    (prefixes [] z)

let test_trace_permutation () =
  let a = Event.internal ~pid:p0 ~lseq:0 "a" in
  let b = Event.internal ~pid:p1 ~lseq:0 "b" in
  let x = Trace.of_list [ a; b ] and y = Trace.of_list [ b; a ] in
  check tbool "permutation" true (Trace.permutation_of x y);
  check tbool "not permutation of prefix" false
    (Trace.permutation_of x (Trace.of_list [ a ]));
  let a1 = Event.internal ~pid:p0 ~lseq:1 "c" in
  check tbool "identical traces are permutations" true
    (Trace.permutation_of (Trace.of_list [ a; a1 ]) (Trace.of_list [ a; a1 ]))

let test_trace_remove () =
  let z = simple_trace () in
  let e = Event.internal ~pid:p0 ~lseq:1 "t" in
  let z' = Trace.remove z e in
  check tint "removed" 2 (Trace.length z');
  check tbool "still wf" true (Trace.well_formed z');
  Alcotest.check_raises "remove missing"
    (Invalid_argument "Trace.remove: event not in trace") (fun () ->
      ignore (Trace.remove z' e))

(* -- spec ------------------------------------------------------------- *)

let test_spec_enabled_initial () =
  let s = Fixtures.one_msg in
  let e0 = Spec.enabled s Trace.empty in
  (* only p0's send is enabled: nothing is in flight for p1 *)
  check tint "one enabled" 1 (List.length e0);
  check tbool "it's the send" true (Event.is_send (List.hd e0))

let test_spec_enabled_receive_needs_flight () =
  let s = Fixtures.one_msg in
  let z = Trace.of_list [ mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m" ] in
  let es = Spec.enabled s z in
  check tint "recv enabled" 1 (List.length es);
  check tbool "is receive" true (Event.is_receive (List.hd es));
  let z' = Trace.snoc z (List.hd es) in
  check tint "quiescent" 0 (List.length (Spec.enabled s z'))

let test_spec_valid () =
  let s = Fixtures.one_msg in
  let z =
    Trace.of_list
      [
        mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m";
        mk_recv ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "m";
      ]
  in
  check tbool "valid" true (Spec.valid s z);
  (* a send p0 never makes *)
  let rogue = Trace.of_list [ mk_send ~src:p0 ~dst:p1 ~lseq:0 ~seq:0 "other" ] in
  check tbool "invalid payload" false (Spec.valid s rogue);
  check tbool "error mentions event" true
    (match Spec.validity_error s rogue with
    | Some msg -> String.length msg > 0
    | None -> false)

let test_spec_extensions () =
  let s = Fixtures.indep in
  let exts = Spec.extensions s Trace.empty in
  check tint "two extensions" 2 (List.length exts);
  List.iter (fun z -> check tbool "ext valid" true (Spec.valid s z)) exts

let suite =
  [
    ("pid basics", `Quick, test_pid_basics);
    ("pid names", `Quick, test_pid_names);
    ("pset algebra", `Quick, test_pset_algebra);
    ("pset compl involution", `Quick, test_pset_compl_involution);
    ("msg identity", `Quick, test_msg_identity);
    ("event constructors", `Quick, test_event_constructors);
    ("event on", `Quick, test_event_on);
    ("event order total", `Quick, test_event_order_total);
    ("trace basics", `Quick, test_trace_basics);
    ("trace snoc/of_list", `Quick, test_trace_snoc_of_list_agree);
    ("trace projection", `Quick, test_trace_projection);
    ("trace prefix/suffix", `Quick, test_trace_prefix_suffix);
    ("trace prefix content", `Quick, test_trace_prefix_not_just_length);
    ("trace messages", `Quick, test_trace_messages);
    ("trace well-formed", `Quick, test_trace_well_formed);
    ("trace prefix-closure", `Quick, test_trace_prefix_closed_wf);
    ("trace permutation", `Quick, test_trace_permutation);
    ("trace remove", `Quick, test_trace_remove);
    ("spec enabled initial", `Quick, test_spec_enabled_initial);
    ("spec receive in-flight", `Quick, test_spec_enabled_receive_needs_flight);
    ("spec validity", `Quick, test_spec_valid);
    ("spec extensions", `Quick, test_spec_extensions);
  ]
