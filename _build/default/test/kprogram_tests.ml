(* Knowledge-based programs. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let s0 = Pset.singleton p0
let s1 = Pset.singleton p1

let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)

(* "acknowledge when you know": p0 sends ping once; p1 sends an ack as
   soon as it knows the ping was sent (which is: after receiving it). *)
let ack_when_known : Kprogram.t =
 fun p history ->
  if Pid.equal p p0 then
    if history = [] then
      [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Send_to (p1, "ping") } ]
    else [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
  else
    let acked = List.exists Event.is_send history in
    [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
    @
    if acked then []
    else [ { Kprogram.guard = Kprogram.know s1 sent; intent = Spec.Send_to (p0, "ack") } ]

let test_ack_program_solves () =
  match Kprogram.solve ~n:2 ~depth:4 ack_when_known with
  | Error e -> Alcotest.fail e
  | Ok sol ->
      check tbool "converged quickly" true (sol.Kprogram.iterations <= 3);
      (* in the solved system, every computation where p1 has sent the
         ack includes p1's receive first *)
      Universe.iter
        (fun _ z ->
          let p1_history = Trace.proj z p1 in
          if List.exists Event.is_send p1_history then
            check tbool "ack only after receive" true
              (match p1_history with
              | first :: _ -> Event.is_receive first
              | [] -> false))
        sol.Kprogram.universe

let test_ack_fires_exactly_when_known () =
  match Kprogram.solve ~n:2 ~depth:4 ack_when_known with
  | Error e -> Alcotest.fail e
  | Ok sol ->
      let u = sol.Kprogram.universe in
      let spec = sol.Kprogram.spec in
      Universe.iter
        (fun _ z ->
          let can_ack =
            List.exists Event.is_send (Spec.enabled_on spec z p1)
          in
          let knows_it = Prop.eval (Knowledge.knows u s1 sent) z in
          let already = List.exists Event.is_send (Trace.proj z p1) in
          (* ack enabled iff p1 knows and has not acked yet *)
          check tbool "guard semantics" (knows_it && not already) can_ack)
        u

(* non-local guard must be rejected: p1 guarded by p0's knowledge *)
let bad_program : Kprogram.t =
 fun p history ->
  if Pid.equal p p0 then
    if history = [] then
      [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Send_to (p1, "ping") } ]
    else []
  else
    [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
    @
    if List.length history > 2 then []
    else
      (* 'sent' itself is local to p0, not to p1: using it raw as p1's
         guard is illegal *)
      [ { Kprogram.guard = (fun _ -> sent); intent = Spec.Send_to (p0, "ack") } ]

let test_non_local_guard_rejected () =
  check tbool "raises" true
    (try
       ignore (Kprogram.solve ~n:2 ~depth:4 bad_program);
       false
     with Invalid_argument _ -> true)

(* the bit-transmission flavour: sender repeats (bounded) until it
   knows the receiver knows; receiver acks once it knows. *)
let bit = Prop.make "bit delivered" (fun z -> Trace.local_length z p1 > 0)

let bit_transmission ~max_sends : Kprogram.t =
 fun p history ->
  if Pid.equal p p0 then begin
    let sends = List.length (List.filter Event.is_send history) in
    [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
    @
    if sends >= max_sends then []
    else
      [
        {
          Kprogram.guard = Kprogram.nknow s0 (Prop.make "r knows" (fun _ -> false));
          intent = Spec.Send_to (p1, "bit");
        };
      ]
  end
  else
    let acked = List.exists Event.is_send history in
    [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Recv_any } ]
    @
    if acked then []
    else
      [ { Kprogram.guard = Kprogram.know s1 bit; intent = Spec.Send_to (p0, "ack") } ]

let test_bit_transmission_nknow_guard () =
  (* the sender's guard is ¬K_S(false-predicate) which is constantly
     true and trivially local; the receiver acks once informed. The
     point of this test: nknow guards compile and the fixpoint exists *)
  match Kprogram.solve ~n:2 ~depth:5 (bit_transmission ~max_sends:2) with
  | Error e -> Alcotest.fail e
  | Ok sol ->
      check tbool "nonempty" true (Universe.size sol.Kprogram.universe > 1);
      (* receiver's ack only ever follows a receive *)
      Universe.iter
        (fun _ z ->
          match Trace.proj z p1 with
          | first :: _ when Event.is_send first -> Alcotest.fail "ack before bit"
          | _ -> ())
        sol.Kprogram.universe

let test_unrestricted_supersets_solution () =
  (* the fixpoint universe is contained in the base universe *)
  match Kprogram.solve ~n:2 ~depth:4 ack_when_known with
  | Error e -> Alcotest.fail e
  | Ok sol ->
      let base =
        Universe.enumerate ~mode:`Canonical
          (Kprogram.unrestricted ~n:2 ack_when_known)
          ~depth:4
      in
      check tbool "solution ⊆ base" true
        (Universe.fold
           (fun _ z acc -> acc && Universe.find base z <> None)
           sol.Kprogram.universe true);
      check tbool "strictly smaller here" true
        (Universe.size sol.Kprogram.universe < Universe.size base)

let test_guardless_program_is_identity () =
  (* with all guards true, solve terminates in one iteration on the base *)
  let plain : Kprogram.t =
   fun p history ->
    if Pid.equal p p0 && history = [] then
      [ { Kprogram.guard = Kprogram.gtrue; intent = Spec.Do "tick" } ]
    else []
  in
  match Kprogram.solve ~n:2 ~depth:3 plain with
  | Error e -> Alcotest.fail e
  | Ok sol ->
      check tint "one iteration" 1 sol.Kprogram.iterations;
      check tint "two computations" 2 (Universe.size sol.Kprogram.universe)

let suite =
  [
    ("ack program solves", `Quick, test_ack_program_solves);
    ("ack fires iff known", `Quick, test_ack_fires_exactly_when_known);
    ("non-local guard rejected", `Quick, test_non_local_guard_rejected);
    ("bit transmission nknow", `Quick, test_bit_transmission_nknow_guard);
    ("solution within base", `Quick, test_unrestricted_supersets_solution);
    ("guardless identity", `Quick, test_guardless_program_is_identity);
  ]
