(* Trace serialization and engine partitions. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* -- trace io ----------------------------------------------------------- *)

let roundtrip z =
  match Trace_io.of_string (Trace_io.to_string z) with
  | Ok z' -> Trace.equal z z'
  | Error _ -> false

let test_roundtrip_simple () =
  let p0 = Fixtures.p0 and p1 = Fixtures.p1 in
  let m = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"hello world" in
  let z =
    Trace.of_list
      [
        Event.send ~pid:p0 ~lseq:0 m;
        Event.receive ~pid:p1 ~lseq:0 m;
        Event.internal ~pid:p0 ~lseq:1 "tick tock";
      ]
  in
  check tbool "roundtrip" true (roundtrip z)

let test_roundtrip_empty () = check tbool "empty" true (roundtrip Trace.empty)

let test_roundtrip_tricky_payloads () =
  let p0 = Fixtures.p0 and p1 = Fixtures.p1 in
  List.iter
    (fun payload ->
      let z =
        Trace.of_list
          [ Event.send ~pid:p0 ~lseq:0 (Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload) ]
      in
      check tbool ("payload: " ^ String.escaped payload) true (roundtrip z))
    [ "with\nnewline"; "with \"quotes\""; "back\\slash"; ""; "unicode é"; "I 0 0 fake" ]

let test_parse_errors () =
  (match Trace_io.of_string "X 0 0 nope" with
  | Error reason -> check tbool "mentions line" true (String.length reason > 0)
  | Ok _ -> Alcotest.fail "accepted garbage");
  (* receive before send is rejected by well-formedness *)
  match Trace_io.of_string "R 1 0 0 0 \"m\"\n" with
  | Error reason ->
      check tbool "wf rejection" true
        (String.length reason > 0)
  | Ok _ -> Alcotest.fail "accepted ill-formed trace"

let test_file_roundtrip () =
  let o = Hpl_protocols.Underlying.run Hpl_protocols.Underlying.default in
  let z = o.Hpl_sim.Engine.trace in
  let path = Filename.temp_file "hpl" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save path z;
      match Trace_io.load path with
      | Ok z' -> check tbool "file roundtrip" true (Trace.equal z z')
      | Error e -> Alcotest.fail e)

let test_load_missing_file () =
  match Trace_io.load "/nonexistent/path/x.trace" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"

let qcheck_roundtrip =
  let gen =
    QCheck.make
      ~print:(fun (_, z) -> Trace.to_string z)
      QCheck.Gen.(
        int_range 0 8 >>= fun steps ->
        list_size (return steps) (int_bound 1000) >>= fun choices ->
        let spec = Fixtures.chatter ~n:3 ~k:3 in
        let rec walk z k cs =
          if k >= steps then z
          else
            match (Spec.enabled spec z, cs) with
            | [], _ | _, [] -> z
            | events, c :: rest ->
                walk (Trace.snoc z (List.nth events (abs c mod List.length events))) (k + 1) rest
        in
        return (steps, walk Trace.empty 0 choices))
  in
  QCheck.Test.make ~name:"trace_io roundtrip (random computations)" ~count:300
    gen (fun (_, z) -> roundtrip z)

(* -- partitions ----------------------------------------------------------- *)

open Hpl_sim

let streamer =
  {
    Engine.init =
      (fun p ->
        if Pid.to_int p = 0 then
          ((), List.init 20 (fun i -> Engine.Set_timer (10.0 *. float_of_int i, "t")))
        else ((), []));
    on_message = (fun () ~self:_ ~src:_ ~payload:_ ~now:_ -> ((), []));
    on_timer =
      (fun () ~self:_ ~tag:_ ~now:_ -> ((), [ Engine.Send (Pid.of_int 1, "m") ]));
  }

let test_partition_drops_crossing () =
  (* partition isolates p0 during [50, 150): sends in that window die *)
  let cfg =
    {
      Engine.default with
      Engine.n = 2;
      partitions = [ (50.0, 150.0, [ 0 ]) ];
    }
  in
  let r = Engine.run cfg streamer in
  check tint "sent all" 20 r.Engine.stats.Engine.sent;
  check tint "10 dropped (t=50..140)" 10 r.Engine.stats.Engine.dropped;
  check tint "10 delivered" 10 r.Engine.stats.Engine.delivered

let test_partition_within_group_ok () =
  (* both endpoints in the same group: unaffected *)
  let cfg =
    {
      Engine.default with
      Engine.n = 2;
      partitions = [ (0.0, 1000.0, [ 0; 1 ]) ];
    }
  in
  let r = Engine.run cfg streamer in
  check tint "none dropped" 0 r.Engine.stats.Engine.dropped

let test_partition_heals () =
  let cfg =
    { Engine.default with Engine.n = 2; partitions = [ (0.0, 45.0, [ 1 ]) ] }
  in
  let r = Engine.run cfg streamer in
  check tint "5 dropped before heal" 5 r.Engine.stats.Engine.dropped;
  check tint "15 after" 15 r.Engine.stats.Engine.delivered

let test_partition_failure_detector_false_suspicion () =
  (* a partition makes the heartbeat detector falsely suspect the
     isolated (live) process — §5's synchrony caveat in network form *)
  let config =
    { Engine.default with partitions = [ (50.0, 120.0, [ 3 ]) ] }
  in
  let o =
    Hpl_protocols.Failure_detector.run ~config
      { Hpl_protocols.Failure_detector.default with crash_time = None }
  in
  check tbool "false suspicion during partition" true
    (o.Hpl_protocols.Failure_detector.false_suspicions > 0)

let suite =
  [
    ("io roundtrip simple", `Quick, test_roundtrip_simple);
    ("io roundtrip empty", `Quick, test_roundtrip_empty);
    ("io tricky payloads", `Quick, test_roundtrip_tricky_payloads);
    ("io parse errors", `Quick, test_parse_errors);
    ("io file roundtrip", `Quick, test_file_roundtrip);
    ("io missing file", `Quick, test_load_missing_file);
    QCheck_alcotest.to_alcotest ~verbose:false qcheck_roundtrip;
    ("partition drops crossing", `Quick, test_partition_drops_crossing);
    ("partition same group ok", `Quick, test_partition_within_group_ok);
    ("partition heals", `Quick, test_partition_heals);
    ("partition fools detector", `Quick, test_partition_failure_detector_false_suspicion);
  ]
