(* Knowledge transfer: Theorems 4, 5, 6 and Lemma 4 (§4.3). *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let s0 = Pset.singleton p0
let s1 = Pset.singleton p1

let u = Universe.enumerate ~mode:`Full Fixtures.ping_pong ~depth:4
let spec = Fixtures.ping_pong

let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)

let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping"
let pong = Msg.make ~src:p1 ~dst:p0 ~seq:0 ~payload:"pong"
let z_sent = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 ping ]
let z_received = Trace.snoc z_sent (Event.receive ~pid:p1 ~lseq:0 ping)
let z_ponged = Trace.snoc z_received (Event.send ~pid:p1 ~lseq:1 pong)
let z_done = Trace.snoc z_ponged (Event.receive ~pid:p0 ~lseq:1 pong)

let pset_sequences = [ [ s0 ]; [ s1 ]; [ s0; s1 ]; [ s1; s0 ]; [ s0; s1; s0 ] ]
let predicates = [ sent; Prop.not_ sent; Prop.tt; Prop.ff ]

let all_pairs f =
  Universe.iter
    (fun _ x -> Universe.iter (fun _ y -> f x y) u)
    u

let test_theorem4_exhaustive () =
  all_pairs (fun x y ->
      List.iter
        (fun psets ->
          List.iter
            (fun b ->
              check tbool "theorem 4" true (Transfer.theorem4 u psets b ~x ~y))
            predicates)
        pset_sequences)

let test_theorem4_sure_exhaustive () =
  all_pairs (fun x y ->
      List.iter
        (fun psets ->
          check tbool "theorem 4 (sure)" true
            (Transfer.theorem4_sure u psets sent ~x ~y))
        pset_sequences)

let test_theorem5_gain_exhaustive () =
  all_pairs (fun x y ->
      List.iter
        (fun psets ->
          List.iter
            (fun b ->
              check tbool "theorem 5" true (Transfer.theorem5_gain u psets b ~x ~y))
            predicates)
        pset_sequences)

let test_theorem6_loss_exhaustive () =
  all_pairs (fun x y ->
      List.iter
        (fun psets ->
          List.iter
            (fun b ->
              check tbool "theorem 6" true (Transfer.theorem6_loss u psets b ~x ~y))
            predicates)
        pset_sequences)

let test_gain_witness_direction () =
  (* p1 gains knowledge of 'sent' between z_sent and z_received; the
     chain must run <P1> = <p1>... for nested [p0;p1] between ε-ish
     points use the full exchange: ¬(p1 knows sent) at z_sent, and
     (p0 knows p1 knows sent) at z_done ⇒ chain <p1 p0> in the gap. *)
  let r = Transfer.explain_gain u [ s0; s1 ] sent ~x:z_sent ~y:z_done in
  check tbool "premise" true r.Transfer.premise;
  (match r.Transfer.chain with
  | None -> Alcotest.fail "expected chain witness"
  | Some events ->
      (* chain is <Pn ... P1> = <p1 p0> *)
      check tbool "first on p1" true
        (Event.on (List.hd events) s1);
      check tbool "last on p0" true
        (Event.on (List.nth events (List.length events - 1)) s0))

let test_gain_requires_message () =
  (* between z_sent and z_received, p1 learns 'sent': the witness chain
     <p1> is just p1's receive *)
  let r = Transfer.explain_gain u [ s1 ] sent ~x:z_sent ~y:z_received in
  check tbool "premise" true r.Transfer.premise;
  match r.Transfer.chain with
  | Some [ e ] -> check tbool "receive event" true (Event.is_receive e)
  | _ -> Alcotest.fail "expected single-event chain"

let test_sure_literal_replacement_unsound () =
  (* regression: the literal all-sure nesting of Theorem 4 is false.
     At ε, p0 knows p1 is unsure of 'sent', so "p0 sure (p1 sure sent)"
     holds — yet p1 is not sure at ε. *)
  let nested_all_sure = Knowledge.sure u s0 (Knowledge.sure u s1 sent) in
  check tbool "premise holds at ε" true (Prop.eval nested_all_sure Trace.empty);
  check tbool "conclusion fails at ε" false
    (Prop.eval (Knowledge.sure u s1 sent) Trace.empty)

let test_no_premature_knowledge () =
  (* knowledge gain premise fails when y still lacks the knowledge *)
  let r = Transfer.explain_gain u [ s1 ] sent ~x:Trace.empty ~y:z_sent in
  check tbool "no premise" false r.Transfer.premise

(* -- lemma 4 ----------------------------------------------------------- *)

let test_lemma4_locality_premise () =
  check tbool "sent local to p̄1" true (Transfer.Lemma4.requires_locality u s1 sent);
  check tbool "tt local trivially" true (Transfer.Lemma4.requires_locality u s1 Prop.tt)

let test_lemma4_exhaustive () =
  Universe.iter
    (fun _ x ->
      List.iter
        (fun e ->
          List.iter
            (fun p ->
              List.iter
                (fun b ->
                  check tbool "receive no loss" true
                    (Transfer.Lemma4.receive_no_loss u ~p ~b ~x ~e);
                  check tbool "send no gain" true
                    (Transfer.Lemma4.send_no_gain u ~p ~b ~x ~e);
                  check tbool "internal no change" true
                    (Transfer.Lemma4.internal_no_change u ~p ~b ~x ~e))
                predicates)
            [ s0; s1 ])
        (Spec.enabled spec x))
    u

let test_corollaries_exhaustive () =
  all_pairs (fun x y ->
      List.iter
        (fun (p, b) ->
          check tbool "gain ⇒ receive" true
            (Transfer.corollary_gain_receives u ~p ~b ~x ~y);
          check tbool "loss ⇒ send" true
            (Transfer.corollary_loss_sends u ~p ~b ~x ~y))
        [ (s1, sent); (s0, Prop.make "received" (fun z ->
              List.exists Event.is_receive (Trace.proj z p1))) ])

let test_corollary_gain_concrete () =
  (* p1 gains knowledge of 'sent' (local to p̄1 = {p0}) between z_sent
     and z_received — p1 indeed receives in the gap *)
  check tbool "holds" true
    (Transfer.corollary_gain_receives u ~p:s1 ~b:sent ~x:z_sent ~y:z_received);
  let suffix = Trace.suffix ~prefix:z_sent z_received in
  check tbool "witness receive present" true
    (List.exists (fun e -> Event.is_receive e && Event.on e s1) suffix)

let suite =
  [
    ("theorem 4 exhaustive", `Slow, test_theorem4_exhaustive);
    ("theorem 4 sure", `Slow, test_theorem4_sure_exhaustive);
    ("theorem 5 gain exhaustive", `Slow, test_theorem5_gain_exhaustive);
    ("theorem 6 loss exhaustive", `Slow, test_theorem6_loss_exhaustive);
    ("gain witness direction", `Quick, test_gain_witness_direction);
    ("gain single message", `Quick, test_gain_requires_message);
    ("no premature knowledge", `Quick, test_no_premature_knowledge);
    ("sure literal replacement unsound", `Quick, test_sure_literal_replacement_unsound);
    ("lemma 4 locality", `Quick, test_lemma4_locality_premise);
    ("lemma 4 exhaustive", `Slow, test_lemma4_exhaustive);
    ("corollaries exhaustive", `Slow, test_corollaries_exhaustive);
    ("corollary gain concrete", `Quick, test_corollary_gain_concrete);
  ]
