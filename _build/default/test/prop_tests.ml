open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool

let u = Universe.enumerate ~mode:`Full Fixtures.ping_pong ~depth:3

let sent_ping =
  Prop.make "ping sent" (fun z -> Trace.send_count z Fixtures.p0 > 0)

let test_constants () =
  check tbool "tt" true (Prop.eval Prop.tt Trace.empty);
  check tbool "ff" false (Prop.eval Prop.ff Trace.empty);
  check tbool "const true = tt" true (Prop.eval (Prop.const true) Trace.empty);
  check tbool "tt constant" true (Prop.is_constant u Prop.tt);
  check tbool "ff constant" true (Prop.is_constant u Prop.ff);
  check tbool "sent_ping not constant" false (Prop.is_constant u sent_ping)

let test_combinators () =
  let z = Universe.comp u (Universe.size u - 1) in
  let b = sent_ping in
  check tbool "not" true (Prop.eval (Prop.not_ b) Trace.empty);
  check tbool "and" true
    (Prop.eval (Prop.and_ b Prop.tt) z = Prop.eval b z);
  check tbool "or with ff" true
    (Prop.eval (Prop.or_ b Prop.ff) z = Prop.eval b z);
  check tbool "implies self" true (Prop.eval (Prop.implies b b) z);
  check tbool "iff self" true (Prop.eval (Prop.iff b b) z);
  check tbool "conj empty" true (Prop.eval (Prop.conj []) z);
  check tbool "disj empty" false (Prop.eval (Prop.disj []) z)

let test_names () =
  check tbool "negation names" true
    (String.length (Prop.name (Prop.not_ sent_ping)) > String.length (Prop.name sent_ping))

let test_extent () =
  let ext = Prop.extent u sent_ping in
  check Alcotest.int "domain" (Universe.size u) (Bitset.length ext);
  Universe.iter
    (fun i z ->
      check tbool "pointwise" (Prop.eval sent_ping z) (Bitset.mem ext i))
    u

let test_of_extent () =
  let ext = Prop.extent u sent_ping in
  let b = Prop.of_extent u "same" ext in
  Universe.iter
    (fun _ z -> check tbool "agrees" (Prop.eval sent_ping z) (Prop.eval b z))
    u

let test_local_event_count () =
  let b = Prop.local_event_count Fixtures.p1 (fun k -> k >= 1) "p1 moved" in
  check tbool "empty" false (Prop.eval b Trace.empty);
  let z =
    Trace.of_list [ Event.internal ~pid:Fixtures.p1 ~lseq:0 "t" ]
  in
  check tbool "after event" true (Prop.eval b z)

let test_respects_interleaving () =
  check tbool "projection-based respects" true
    (Prop.respects_interleaving u sent_ping);
  (* a predicate reading the linear order of independent events is not
     interleaving-invariant; use a system with real interleavings *)
  let u2 = Universe.enumerate ~mode:`Full Fixtures.indep ~depth:4 in
  let order_sensitive =
    Prop.make "p0 moved first" (fun z ->
        match Trace.to_list z with
        | e :: _ -> Pid.equal e.Event.pid Fixtures.p0
        | [] -> false)
  in
  check tbool "order-sensitive caught" false
    (Prop.respects_interleaving u2 order_sensitive)

let suite =
  [
    ("constants", `Quick, test_constants);
    ("combinators", `Quick, test_combinators);
    ("names", `Quick, test_names);
    ("extent pointwise", `Quick, test_extent);
    ("of_extent roundtrip", `Quick, test_of_extent);
    ("local_event_count", `Quick, test_local_event_count);
    ("respects_interleaving", `Quick, test_respects_interleaving);
  ]
