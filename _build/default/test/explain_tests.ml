(* The knowledge debugger (Explain) and CTL expansion-law properties. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let s0 = Pset.singleton p0
let s1 = Pset.singleton p1

let u = Universe.enumerate ~mode:`Full Fixtures.ping_pong ~depth:4
let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)

let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping"
let pong = Msg.make ~src:p1 ~dst:p0 ~seq:0 ~payload:"pong"
let z_sent = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 ping ]
let z_received = Trace.snoc z_sent (Event.receive ~pid:p1 ~lseq:0 ping)

let z_done =
  Trace.snoc
    (Trace.snoc z_received (Event.send ~pid:p1 ~lseq:1 pong))
    (Event.receive ~pid:p0 ~lseq:1 pong)

let test_gain_report () =
  match Explain.gain u [ s1 ] sent ~x:z_sent ~y:z_received with
  | None -> Alcotest.fail "expected a gain report"
  | Some r ->
      check tbool "gained" true r.Explain.gained;
      check tint "one step" 1 (List.length r.Explain.steps);
      check tbool "step is the receive" true
        (Event.is_receive (List.hd r.Explain.steps).Explain.event);
      check tbool "narrative nonempty" true (List.length r.Explain.narrative >= 2);
      (* the narrative mentions the payload *)
      let text = String.concat "\n" r.Explain.narrative in
      let contains_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check tbool "mentions ping" true (contains_sub text "ping")

let test_gain_nested_report () =
  match Explain.gain u [ s0; s1 ] sent ~x:Trace.empty ~y:z_done with
  | None -> Alcotest.fail "expected nested gain"
  | Some r ->
      check tbool "gained" true r.Explain.gained;
      (* chain <p1 p0>: first step on p1, last on p0 *)
      let first = List.hd r.Explain.steps and last = List.nth r.Explain.steps (List.length r.Explain.steps - 1) in
      check tbool "starts at p1" true (Pid.equal first.Explain.event.Event.pid p1);
      check tbool "ends at p0" true (Pid.equal last.Explain.event.Event.pid p0)

let test_no_report_without_premise () =
  check tbool "no gain to explain" true
    (Explain.gain u [ s1 ] sent ~x:Trace.empty ~y:z_sent = None)

let test_learning_moments () =
  let moments = Explain.learning_moments u s1 sent z_done in
  (* p1 learns 'sent' exactly once, at its receive (position 1) *)
  check Alcotest.(list (pair int bool)) "one gain at the receive" [ (1, true) ]
    moments;
  (* p0 knows from its own send: moment at position 0 *)
  let m0 = Explain.learning_moments u s0 sent z_done in
  check Alcotest.(list (pair int bool)) "p0 at the send" [ (0, true) ] m0

let test_pp_smoke () =
  match Explain.gain u [ s1 ] sent ~x:z_sent ~y:z_received with
  | Some r ->
      let str = Format.asprintf "%a" Explain.pp r in
      check tbool "renders" true (String.length str > 10)
  | None -> Alcotest.fail "expected report"

(* -- CTL expansion laws (property checks) ------------------------------- *)

let received =
  Prop.make "received" (fun z -> List.exists Event.is_receive (Trace.proj z p1))

let props = [ sent; received; Prop.and_ sent received ]

let test_ctl_ef_expansion () =
  (* EF φ = φ ∨ EX EF φ *)
  List.iter
    (fun b ->
      let phi = Temporal.atom b in
      let lhs = Temporal.check u (Temporal.ef phi) in
      let rhs =
        Temporal.check u (Temporal.or_ phi (Temporal.ex (Temporal.ef phi)))
      in
      check tbool "EF expansion" true (Bitset.equal lhs rhs))
    props

let test_ctl_af_expansion () =
  (* AF φ = φ ∨ (has-successor ∧ AX AF φ); on finite trees leaves must
     satisfy φ itself *)
  List.iter
    (fun b ->
      let phi = Temporal.atom b in
      let lhs = Temporal.check u (Temporal.af phi) in
      let has_succ = Temporal.ex Temporal.tt in
      let rhs =
        Temporal.check u
          (Temporal.or_ phi (Temporal.and_ has_succ (Temporal.ax (Temporal.af phi))))
      in
      check tbool "AF expansion" true (Bitset.equal lhs rhs))
    props

let test_ctl_ag_duality () =
  List.iter
    (fun b ->
      let phi = Temporal.atom b in
      let lhs = Temporal.check u (Temporal.ag phi) in
      let rhs =
        Bitset.complement (Temporal.check u (Temporal.ef (Temporal.not_ phi)))
      in
      check tbool "AG = ¬EF¬" true (Bitset.equal lhs rhs))
    props

let test_ctl_monotonicity () =
  (* φ ⊆ ψ pointwise ⇒ EF φ ⊆ EF ψ and AG φ ⊆ AG ψ *)
  let phi = Temporal.atom (Prop.and_ sent received) in
  let psi = Temporal.atom sent in
  check tbool "EF monotone" true
    (Bitset.subset (Temporal.check u (Temporal.ef phi)) (Temporal.check u (Temporal.ef psi)));
  check tbool "AG monotone" true
    (Bitset.subset (Temporal.check u (Temporal.ag phi)) (Temporal.check u (Temporal.ag psi)))

let suite =
  [
    ("gain report", `Quick, test_gain_report);
    ("nested gain report", `Quick, test_gain_nested_report);
    ("no premise, no report", `Quick, test_no_report_without_premise);
    ("learning moments", `Quick, test_learning_moments);
    ("pp smoke", `Quick, test_pp_smoke);
    ("CTL EF expansion", `Quick, test_ctl_ef_expansion);
    ("CTL AF expansion", `Quick, test_ctl_af_expansion);
    ("CTL AG duality", `Quick, test_ctl_ag_duality);
    ("CTL monotonicity", `Quick, test_ctl_monotonicity);
  ]
