(* Knowledge, local predicates and common knowledge (§4.1–4.2). *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let s0 = Pset.singleton p0
let s1 = Pset.singleton p1
let d = Pset.all 2

let u = Universe.enumerate ~mode:`Full Fixtures.ping_pong ~depth:4

(* "ping has been sent" — local to p0 (it is p0's own action) *)
let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)

(* "ping has been received by p1" — local to p1 *)
let received =
  Prop.make "received" (fun z ->
      List.exists (fun e -> Event.is_receive e) (Trace.proj z p1))

let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping"
let pong = Msg.make ~src:p1 ~dst:p0 ~seq:0 ~payload:"pong"
let z_sent = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 ping ]
let z_received = Trace.snoc z_sent (Event.receive ~pid:p1 ~lseq:0 ping)
let z_ponged = Trace.snoc z_received (Event.send ~pid:p1 ~lseq:1 pong)
let z_done = Trace.snoc z_ponged (Event.receive ~pid:p0 ~lseq:1 pong)

let test_knows_progression () =
  let k0 = Knowledge.knows u s0 sent in
  let k1 = Knowledge.knows u s1 sent in
  (* p0 knows it sent, immediately *)
  check tbool "p0 knows at z_sent" true (Prop.eval k0 z_sent);
  (* p1 does not know yet *)
  check tbool "p1 ignorant at z_sent" false (Prop.eval k1 z_sent);
  (* after receiving, p1 knows *)
  check tbool "p1 knows at z_received" true (Prop.eval k1 z_received);
  (* nobody knows at the start (it is false) *)
  check tbool "not known at ε" false (Prop.eval k0 Trace.empty)

let test_nested_knowledge () =
  (* after the pong returns, p0 knows p1 knows the ping was sent *)
  let k01 = Knowledge.nested u [ s0; s1 ] sent in
  check tbool "¬ nested at z_received" false (Prop.eval k01 z_received);
  check tbool "nested at z_done" true (Prop.eval k01 z_done);
  (* and p1 knows p0 knows it — that already holds when p1 receives,
     because the ping's existence implies p0 sent it *)
  let k10 = Knowledge.nested u [ s1; s0 ] sent in
  check tbool "p1 knows p0 knows at z_received" true (Prop.eval k10 z_received)

let test_nested_empty_is_b () =
  let n = Knowledge.nested u [] sent in
  Universe.iter
    (fun _ z -> check tbool "identity" (Prop.eval sent z) (Prop.eval n z))
    u

let test_sure_unsure () =
  let sure0 = Knowledge.sure u s0 sent in
  let sure1 = Knowledge.sure u s1 sent in
  (* p0 always sure about its own action *)
  Universe.iter (fun _ z -> check tbool "p0 sure" true (Prop.eval sure0 z)) u;
  (* p1 unsure right after the send *)
  check tbool "p1 unsure at z_sent" false (Prop.eval sure1 z_sent);
  check tbool "p1 sure at z_received" true (Prop.eval sure1 z_received);
  let unsure1 = Knowledge.unsure u s1 sent in
  check tbool "unsure is negation" true (Prop.eval unsure1 z_sent)

let test_naive_agrees () =
  List.iter
    (fun ps ->
      List.iter
        (fun b ->
          let ext = Prop.extent u b in
          check tbool "naive = indexed" true
            (Bitset.equal (Knowledge.knows_ext u ps ext)
               (Knowledge.knows_ext_naive u ps ext)))
        [ sent; received; Prop.tt; Prop.ff ])
    [ s0; s1; d; Pset.empty ]

let test_knows_ext_matches_prop () =
  let ext = Prop.extent u sent in
  let kext = Knowledge.knows_ext u s1 ext in
  let k = Knowledge.knows u s1 sent in
  Universe.iter
    (fun i z ->
      check tbool "agree" (Prop.eval k z) (Bitset.mem kext i))
    u

(* -- the twelve knowledge facts -------------------------------------- *)

let props = [ sent; received; Prop.tt; Prop.ff; Prop.and_ sent received ]
let psets = [ s0; s1; d; Pset.empty ]

let forall_ps f = List.iter (fun ps -> List.iter (f ps) props) psets

let test_fact1 () =
  forall_ps (fun ps b ->
      check tbool "fact1" true (Knowledge.Laws.fact1_class_invariant u ps b))

let test_fact3 () =
  List.iter
    (fun b ->
      check tbool "fact3" true (Knowledge.Laws.fact3_monotone_union u s0 s1 b))
    props

let test_fact4 () =
  forall_ps (fun ps b ->
      check tbool "fact4" true (Knowledge.Laws.fact4_veridical u ps b))

let test_fact5 () =
  forall_ps (fun ps b -> check tbool "fact5" true (Knowledge.Laws.fact5_total u ps b))

let test_fact6 () =
  forall_ps (fun ps b ->
      check tbool "fact6" true (Knowledge.Laws.fact6_conjunction u ps b received))

let test_fact7 () =
  forall_ps (fun ps b ->
      check tbool "fact7" true (Knowledge.Laws.fact7_disjunction u ps b received))

let test_fact8 () =
  forall_ps (fun ps b ->
      check tbool "fact8" true (Knowledge.Laws.fact8_consistency u ps b))

let test_fact9 () =
  forall_ps (fun ps b ->
      check tbool "fact9" true
        (Knowledge.Laws.fact9_closure u ps b (Prop.or_ b received)))

let test_fact10 () =
  forall_ps (fun ps b ->
      check tbool "fact10" true (Knowledge.Laws.fact10_positive_introspection u ps b))

let test_fact11 () =
  forall_ps (fun ps b ->
      check tbool "fact11 (lemma 2)" true
        (Knowledge.Laws.fact11_negative_introspection u ps b))

let test_fact12 () =
  List.iter
    (fun ps ->
      check tbool "fact12 true" true (Knowledge.Laws.fact12_constants u ps true);
      check tbool "fact12 false" true (Knowledge.Laws.fact12_constants u ps false))
    psets

(* -- local predicates -------------------------------------------------- *)

let test_locality () =
  check tbool "sent local to p0" true (Local_pred.is_local u s0 sent);
  check tbool "received local to p1" true (Local_pred.is_local u s1 received);
  check tbool "sent not local to p1" false (Local_pred.is_local u s1 sent);
  check tbool "everything local to D" true (Local_pred.is_local u d sent);
  check tbool "constants local to anyone" true (Local_pred.is_local u Pset.empty Prop.tt)

let test_local_facts () =
  let pairs = [ (s0, sent); (s1, received); (d, sent) ] in
  List.iter
    (fun (ps, b) ->
      check tbool "fact1" true (Local_pred.Facts.fact1_iso_invariant u ps b);
      check tbool "fact2" true (Local_pred.Facts.fact2_known u ps b);
      check tbool "fact3" true (Local_pred.Facts.fact3_negation u ps b);
      check tbool "fact5" true (Local_pred.Facts.fact5_knows_is_local u ps b);
      check tbool "fact8" true (Local_pred.Facts.fact8_sure_is_local u ps b))
    pairs;
  check tbool "fact4 collapse" true
    (Local_pred.Facts.fact4_knowledge_collapse u s0 s1 sent);
  check tbool "fact7 constants" true
    (Local_pred.Facts.fact7_constants_local u s0 true)

let test_lemma3 () =
  (* non-constant predicate local to disjoint sets cannot exist; the
     checker must hold on every (P, Q, b) instance *)
  List.iter
    (fun b ->
      check tbool "lemma3" true (Local_pred.lemma3_constant u s0 s1 b))
    props;
  (* positive instance: constants are local to both *)
  check tbool "lemma3 constant" true (Local_pred.lemma3_constant u s0 s1 Prop.tt)

let test_identical_knowledge () =
  List.iter
    (fun b ->
      check tbool "identical knows" true
        (Local_pred.identical_knowledge_constant u s0 s1 b);
      check tbool "identical sure" true
        (Local_pred.identical_sure_constant u s0 s1 b))
    props

(* -- common knowledge -------------------------------------------------- *)

let test_common_knowledge_constant () =
  List.iter
    (fun b ->
      check tbool "CK constant" true (Common_knowledge.constancy_holds u b))
    props

let test_common_knowledge_of_tt () =
  let ck = Common_knowledge.common u Prop.tt in
  Universe.iter (fun _ z -> check tbool "CK(true) holds" true (Prop.eval ck z)) u

let test_common_knowledge_of_contingent_is_false () =
  (* 'sent' is contingent, so its CK must be constantly false *)
  let ck = Common_knowledge.common u sent in
  Universe.iter (fun _ z -> check tbool "CK(sent) false" false (Prop.eval ck z)) u

let test_level_approximations () =
  (* E^k chain is decreasing and contains the fixpoint *)
  let ck = Prop.extent u (Common_knowledge.common u sent) in
  let prev = ref (Prop.extent u (Common_knowledge.level u 0 sent)) in
  for k = 1 to 4 do
    let cur = Prop.extent u (Common_knowledge.level u k sent) in
    check tbool "decreasing" true (Bitset.subset cur !prev);
    check tbool "contains gfp" true (Bitset.subset ck cur);
    prev := cur
  done

let test_iterations_reported () =
  check tbool "≥1 iteration for contingent" true
    (Common_knowledge.iterations_to_fixpoint u sent >= 1);
  check tint "tt converges immediately" 0
    (Common_knowledge.iterations_to_fixpoint u Prop.tt)

let suite =
  [
    ("knows progression", `Quick, test_knows_progression);
    ("nested knowledge", `Quick, test_nested_knowledge);
    ("nested [] = b", `Quick, test_nested_empty_is_b);
    ("sure/unsure", `Quick, test_sure_unsure);
    ("knows_ext vs knows", `Quick, test_knows_ext_matches_prop);
    ("naive = indexed", `Quick, test_naive_agrees);
    ("fact 1+2", `Quick, test_fact1);
    ("fact 3", `Quick, test_fact3);
    ("fact 4", `Quick, test_fact4);
    ("fact 5", `Quick, test_fact5);
    ("fact 6", `Quick, test_fact6);
    ("fact 7", `Quick, test_fact7);
    ("fact 8", `Quick, test_fact8);
    ("fact 9", `Quick, test_fact9);
    ("fact 10", `Quick, test_fact10);
    ("fact 11 (lemma 2)", `Quick, test_fact11);
    ("fact 12", `Quick, test_fact12);
    ("locality", `Quick, test_locality);
    ("local facts", `Quick, test_local_facts);
    ("lemma 3", `Quick, test_lemma3);
    ("identical knowledge corollaries", `Quick, test_identical_knowledge);
    ("CK constancy", `Quick, test_common_knowledge_constant);
    ("CK of true", `Quick, test_common_knowledge_of_tt);
    ("CK of contingent", `Quick, test_common_knowledge_of_contingent_is_false);
    ("CK level approximations", `Quick, test_level_approximations);
    ("CK iterations", `Quick, test_iterations_reported);
  ]
