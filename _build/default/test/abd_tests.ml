(* ABD fault-tolerant register. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_healthy_atomic () =
  List.iter
    (fun seed ->
      let o = Abd_register.run { Abd_register.default with seed } in
      check tbool "atomic" true o.Abd_register.atomic;
      check tint "all ops complete" 12 o.Abd_register.completed_ops;
      check tint "none blocked" 0 o.Abd_register.blocked_ops)
    [ 1L; 2L; 3L; 4L ]

let test_reordering_network_still_atomic () =
  List.iter
    (fun seed ->
      let config =
        { Hpl_sim.Engine.default with fifo = false; max_delay = 30.0; seed }
      in
      let o = Abd_register.run ~config Abd_register.default in
      check tbool "atomic under reordering" true o.Abd_register.atomic)
    [ 5L; 6L; 7L ]

let test_minority_crash_safe_and_live () =
  let o =
    Abd_register.run
      { Abd_register.default with crash = [ (30.0, 3); (60.0, 4) ] }
  in
  check tbool "atomic" true o.Abd_register.atomic;
  check tint "no blocked ops" 0 o.Abd_register.blocked_ops;
  check tbool "live processes finished ops" true (o.Abd_register.completed_ops > 0)

let test_majority_crash_blocks_but_safe () =
  let o =
    Abd_register.run
      { Abd_register.default with crash = [ (30.0, 2); (30.0, 3); (30.0, 4) ] }
  in
  check tbool "still atomic (safety)" true o.Abd_register.atomic;
  check tbool "some ops blocked (no liveness)" true (o.Abd_register.blocked_ops > 0)

let test_ops_well_formed () =
  let o = Abd_register.run Abd_register.default in
  List.iter
    (fun op ->
      (match op.Abd_register.responded with
      | Some r -> check tbool "resp after inv" true (r > op.Abd_register.invoked)
      | None -> ());
      check tbool "writer owns writes" true
        (op.Abd_register.kind = `Read || op.Abd_register.owner = 0))
    o.Abd_register.ops;
  check tbool "trace wf" true (Trace.well_formed o.Abd_register.trace)

let test_checker_catches_stale_read () =
  (* check tag monotonicity across non-overlapping reads on a real run *)
  let o = Abd_register.run Abd_register.default in
  let reads =
    List.filter (fun op -> op.Abd_register.kind = `Read) o.Abd_register.ops
  in
  (* reads sorted by invocation: non-overlapping ones have monotone tags *)
  let rec monotone = function
    | r1 :: r2 :: rest ->
        (match r1.Abd_register.responded with
        | Some resp when resp < r2.Abd_register.invoked ->
            check tbool "monotone tags" true
              (r2.Abd_register.tag >= r1.Abd_register.tag)
        | _ -> ());
        monotone (r2 :: rest)
    | _ -> ()
  in
  monotone reads

let suite =
  [
    ("healthy atomic", `Quick, test_healthy_atomic);
    ("atomic under reordering", `Quick, test_reordering_network_still_atomic);
    ("minority crash", `Quick, test_minority_crash_safe_and_live);
    ("majority crash blocks", `Quick, test_majority_crash_blocks_but_safe);
    ("ops well-formed", `Quick, test_ops_well_formed);
    ("reads monotone", `Quick, test_checker_catches_stale_read);
  ]
