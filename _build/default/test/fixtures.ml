(* Small systems shared across test suites. *)
open Hpl_core

let p0 = Pid.of_int 0
let p1 = Pid.of_int 1
let p2 = Pid.of_int 2

(* One message: p0 sends "m" to p1 once; p1 is always willing to receive. *)
let one_msg =
  Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        if history = [] then [ Spec.Send_to (p1, "m") ] else []
      else [ Spec.Recv_any ])

(* Two independent internal events: p0 does "a" once, p1 does "b" once. *)
let indep =
  Spec.make ~n:2 (fun p history ->
      if history <> [] then []
      else if Pid.equal p p0 then [ Spec.Do "a" ]
      else [ Spec.Do "b" ])

(* Each of [n] processes performs [k] internal ticks. *)
let ticks ~n ~k =
  Spec.make ~n (fun _ history ->
      if List.length history < k then [ Spec.Do "tick" ] else [])

(* A ping-pong: p0 sends "ping", p1 replies "pong" after receiving. *)
let ping_pong =
  Spec.make ~n:2 (fun p history ->
      if Pid.equal p p0 then
        match history with
        | [] -> [ Spec.Send_to (p1, "ping") ]
        | _ -> [ Spec.Recv_any ]
      else
        match history with
        | [] -> [ Spec.Recv_any ]
        | [ _ ] -> [ Spec.Send_to (p0, "pong") ]
        | _ -> [])

(* p0 flips a local bit (internal events "flip"), forever up to depth;
   p1 ticks. Used for local-predicate tests. *)
let flipper =
  Spec.make ~n:2 (fun p _history ->
      if Pid.equal p p0 then [ Spec.Do "flip" ] else [ Spec.Do "tick" ])

(* Nondeterministic chatter among n processes: every process may send a
   message to its right neighbour or do an internal step, up to [k]
   local events. Produces rich universes for property tests. *)
let chatter ~n ~k =
  Spec.make ~n (fun p history ->
      if List.length history >= k then []
      else
        let right = Pid.of_int ((Pid.to_int p + 1) mod n) in
        [ Spec.Send_to (right, "c"); Spec.Do "idle"; Spec.Recv_any ])

(* Full-information chatter: like [chatter], but every message payload
   encodes the sender's entire local history, so receiving a message
   pins down the sender's computation exactly. Under this protocol,
   causal history and knowledge coincide (see clocks_tests). *)
let full_info ~n ~k =
  let encode history = String.concat ";" (List.map Event.to_string history) in
  Spec.make ~n (fun p history ->
      if List.length history >= k then []
      else
        let right = Pid.of_int ((Pid.to_int p + 1) mod n) in
        [ Spec.Send_to (right, encode history); Spec.Do "idle"; Spec.Recv_any ])

(* A family of random finite systems: each process follows a seeded
   script of intent menus — at local step k it may offer a send to a
   random peer, an internal action, and/or a receive. All processes
   stop after [k] events, so the systems are inherently finite and
   bounded universes are exact. Used to fuzz the §3/§4 laws beyond the
   handwritten systems. *)
let random_spec ~n ~k ~seed =
  let menu p step =
    (* cheap deterministic hash *)
    let h = Hashtbl.hash (seed, Pid.to_int p, step) in
    let opts = ref [] in
    if h land 1 = 1 then begin
      let dst = Pid.of_int ((Pid.to_int p + 1 + (h lsr 3 mod (n - 1))) mod n) in
      opts := Spec.Send_to (dst, Printf.sprintf "m%d" (h lsr 5 mod 3)) :: !opts
    end;
    if h land 2 = 2 then
      opts := Spec.Do (Printf.sprintf "t%d" (h lsr 7 mod 2)) :: !opts;
    if h land 4 = 4 then opts := Spec.Recv_any :: !opts;
    (* never leave a process with an empty menu on step 0, to keep the
       universes interesting *)
    if !opts = [] then [ Spec.Do "idle" ] else !opts
  in
  Spec.make ~n (fun p history ->
      let step = List.length history in
      if step >= k then [] else menu p step)

let trace_of_events es = Trace.of_list es

let msg ~src ~dst ~seq ~payload = Msg.make ~src ~dst ~seq ~payload
