(* Golden-trace regressions: reload checked-in runs and re-verify the
   invariants that held when they were recorded. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* the test binary runs from test/_build; resolve corpus/ robustly *)
let corpus_path file =
  let candidates =
    [
      Filename.concat "corpus" file;
      Filename.concat "../corpus" file;
      Filename.concat "../../corpus" file;
      Filename.concat "../../../corpus" file;
      Filename.concat "../../../../corpus" file;
      Filename.concat "../../../../../corpus" file;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "corpus file %s not found from %s" file (Sys.getcwd ())

let load file =
  match Trace_io.load (corpus_path file) with
  | Ok z -> z
  | Error e -> Alcotest.failf "cannot load %s: %s" file e

let test_relay () =
  let z = load "relay.trace" in
  check tint "4 events" 4 (Trace.length z);
  check tbool "wf" true (Trace.well_formed z);
  check tbool "chain p0->p2" true
    (Chain.exists ~n:3 ~z (Chain.of_pids [ Pid.of_int 0; Pid.of_int 2 ]));
  check tbool "vector clocks exact" true
    (Hpl_clocks.Vector.characterizes_causality ~n:3 z)

let test_ds_termination () =
  let z = load "ds_termination.trace" in
  check tbool "wf" true (Trace.well_formed z);
  let r =
    Termination.score ~detector:"ds" ~detect_tag:Dijkstra_scholten.detect_tag z
  in
  check tbool "detected" true r.Termination.detected;
  check tbool "sound" true r.Termination.sound;
  check tint "overhead = M" r.Termination.underlying_msgs r.Termination.overhead_msgs

let test_two_generals_ladder () =
  let z = load "two_generals_ladder.trace" in
  check tbool "valid for the spec" true (Spec.valid Two_generals.spec z);
  let u = Universe.enumerate Two_generals.spec ~depth:9 in
  check tint "depth 3" 3 (Two_generals.max_depth_at u z)

let test_lamport_mutex () =
  let z = load "lamport_mutex.trace" in
  check tbool "wf" true (Trace.well_formed z);
  let n = Lamport_mutex.default.Lamport_mutex.n in
  let ts = Causality.compute ~n z in
  let ivs = Hpl_clocks.Interval.of_bracketing ~enter:"mx-enter" ~exit:"mx-exit" z in
  check tbool "CS total order" true (Hpl_clocks.Interval.totally_ordered ts ivs);
  check tbool "fifo" true (Hpl_clocks.Causal_order.fifo_per_channel z)

let test_regeneration_is_deterministic () =
  (* the DS corpus file regenerates bit-for-bit *)
  let params = { Underlying.default with n = 5; budget = 30; seed = 7L } in
  let _, z =
    Dijkstra_scholten.run_raw
      ~config:{ Hpl_sim.Engine.default with seed = 7L }
      params
  in
  check tbool "matches corpus" true (Trace.equal z (load "ds_termination.trace"))

let suite =
  [
    ("relay", `Quick, test_relay);
    ("ds termination", `Quick, test_ds_termination);
    ("two generals ladder", `Quick, test_two_generals_ladder);
    ("lamport mutex", `Quick, test_lamport_mutex);
    ("regeneration deterministic", `Quick, test_regeneration_is_deterministic);
  ]
