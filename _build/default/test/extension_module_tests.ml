(* Core extensions: group knowledge, consistent cuts, state-based
   isomorphism (§6), and the naive-chain ablation. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let s0 = Pset.singleton p0
let s1 = Pset.singleton p1
let d = Pset.all 2

let u = Universe.enumerate ~mode:`Full Fixtures.ping_pong ~depth:4
let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)

let received =
  Prop.make "received" (fun z -> List.exists Event.is_receive (Trace.proj z p1))

(* -- group knowledge ---------------------------------------------------- *)

let test_group_everyone_vs_someone () =
  let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping" in
  let z_sent = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 ping ] in
  let z_recv = Trace.snoc z_sent (Event.receive ~pid:p1 ~lseq:0 ping) in
  let e = Group.everyone u d sent in
  let s = Group.someone u d sent in
  (* right after the send: p0 knows, p1 does not *)
  check tbool "someone at z_sent" true (Prop.eval s z_sent);
  check tbool "not everyone at z_sent" false (Prop.eval e z_sent);
  check tbool "everyone at z_recv" true (Prop.eval e z_recv);
  (* empty group *)
  check tbool "everyone-empty is true" true
    (Prop.eval (Group.everyone u Pset.empty sent) Trace.empty);
  check tbool "someone-empty is false" false
    (Prop.eval (Group.someone u Pset.empty sent) Trace.empty)

let test_group_distributed_is_knows () =
  List.iter
    (fun b ->
      check tbool "alias" true
        (Bitset.equal
           (Prop.extent u (Group.distributed u d b))
           (Prop.extent u (Knowledge.knows u d b))))
    [ sent; received; Prop.tt ]

let test_group_laws () =
  List.iter
    (fun b ->
      check tbool "E ⇒ D" true (Group.Laws.everyone_implies_distributed u d b);
      check tbool "singleton collapse p0" true (Group.Laws.someone_of_singleton u p0 b);
      check tbool "singleton collapse p1" true (Group.Laws.someone_of_singleton u p1 b);
      check tbool "D monotone" true (Group.Laws.distributed_monotone u s0 d b);
      check tbool "E-chain decreasing" true (Group.Laws.e_chain_decreasing u d 4 b))
    [ sent; received; Prop.and_ sent received ]

let test_group_e_iterate_limits_to_ck () =
  (* for contingent facts E^k eventually reaches the (false) CK *)
  let ck = Prop.extent u (Common_knowledge.common u sent) in
  let e5 = Prop.extent u (Group.e_iterate u d 5 sent) in
  check tbool "E^5 ⊆ ... contains CK" true (Bitset.subset ck e5);
  check tbool "E^5 of sent is empty (= CK)" true (Bitset.equal ck (Bitset.inter e5 (Prop.extent u sent)))

(* -- cuts ----------------------------------------------------------------- *)

(* the relay computation *)
let p2 = Fixtures.p2
let m01 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m"
let m12 = Msg.make ~src:p1 ~dst:p2 ~seq:0 ~payload:"m"

let relay =
  Trace.of_list
    [
      Event.send ~pid:p0 ~lseq:0 m01;
      Event.receive ~pid:p1 ~lseq:0 m01;
      Event.send ~pid:p1 ~lseq:1 m12;
      Event.receive ~pid:p2 ~lseq:0 m12;
    ]

let test_cut_basics () =
  let c = Cut.of_counts [| 1; 2; 0 |] in
  check tint "n" 3 (Cut.n c);
  check tbool "consistent" true (Cut.consistent ~n:3 relay c);
  check tbool "bottom consistent" true
    (Cut.consistent ~n:3 relay (Cut.bottom ~n:3));
  check tbool "top consistent" true
    (Cut.consistent ~n:3 relay (Cut.top ~of_:relay ~n:3));
  (* receive included without its send: inconsistent *)
  check tbool "orphan receive" false
    (Cut.consistent ~n:3 relay (Cut.of_counts [| 0; 1; 0 |]));
  (* counts above local length: rejected *)
  check tbool "overflow" false
    (Cut.consistent ~n:3 relay (Cut.of_counts [| 2; 0; 0 |]))

let test_cut_lattice_ops () =
  let a = Cut.of_counts [| 1; 1; 0 |] and b = Cut.of_counts [| 1; 2; 0 |] in
  check tbool "leq" true (Cut.leq a b);
  check tbool "join" true (Cut.equal (Cut.join a b) b);
  check tbool "meet" true (Cut.equal (Cut.meet a b) a);
  (* join/meet of consistent cuts stay consistent (checked on all pairs) *)
  let cuts = Cut.all_consistent ~n:3 relay in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          check tbool "join closed" true (Cut.consistent ~n:3 relay (Cut.join x y));
          check tbool "meet closed" true (Cut.consistent ~n:3 relay (Cut.meet x y)))
        cuts)
    cuts

let test_cut_count_relay () =
  (* consistent cuts of the relay: p0 ∈ {0,1}, then chain constraints
     force p1 ≥ receives etc. Enumerate and sanity-check monotonicity:
     the count equals the number of [D]-classes of prefixes *)
  let cuts = Cut.all_consistent ~n:3 relay in
  check tbool "has bottom" true (List.exists (Cut.equal (Cut.bottom ~n:3)) cuts);
  check tbool "has top" true
    (List.exists (Cut.equal (Cut.top ~of_:relay ~n:3)) cuts);
  check tint "count" (Cut.count_consistent ~n:3 relay) (List.length cuts);
  (* every sub-computation of a consistent cut is well-formed *)
  List.iter
    (fun c ->
      check tbool "sub-computation wf" true
        (Trace.well_formed (Cut.sub_computation relay c)))
    cuts;
  (* the relay is a causal chain: consistent cuts are exactly the 5
     prefixes of the chain *)
  check tint "chain has len+1 cuts" 5 (List.length cuts)

let test_cut_independent_events () =
  (* two independent events: all 4 cuts are consistent *)
  let z =
    Trace.of_list
      [ Event.internal ~pid:p0 ~lseq:0 "a"; Event.internal ~pid:p1 ~lseq:0 "b" ]
  in
  check tint "2x2 cuts" 4 (Cut.count_consistent ~n:2 z)

let test_cut_of_prefix () =
  let x = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 m01 ] in
  let c = Cut.of_prefix ~n:3 x in
  check tbool "prefix cut consistent in z" true (Cut.consistent ~n:3 relay c);
  check tint "events inside" 1 (List.length (Cut.events relay c))

let test_observation2_causal_past () =
  (* §3.1 Observation 2: a subset of events closed under ⤳ is a
     computation — the causal past of any event is such a subset *)
  let ts = Causality.compute ~n:3 relay in
  List.iteri
    (fun i _ ->
      let past = Causality.causal_past ts i in
      let sub =
        Trace.of_list
          (List.filteri (fun j _ -> List.mem j past) (Trace.to_list relay))
      in
      check tbool "causal past is a computation" true (Trace.well_formed sub))
    (Trace.to_list relay)

(* -- state-based isomorphism --------------------------------------------- *)

let tfull = State_iso.make u State_iso.full
let tcounters = State_iso.make u State_iso.counters
let tlast = State_iso.make u State_iso.last_event

let test_state_full_coincides () =
  List.iter
    (fun ps ->
      List.iter
        (fun b ->
          check tbool "full = knows" true (State_iso.Laws.full_coincides u ps b))
        [ sent; received; Prop.tt; Prop.ff ])
    [ s0; s1; d; Pset.empty ]

let test_state_s5 () =
  List.iter
    (fun t ->
      List.iter
        (fun ps ->
          List.iter
            (fun b ->
              check tbool "veridical" true (State_iso.Laws.s5_veridical t ps b);
              check tbool "positive introspection" true
                (State_iso.Laws.s5_positive_introspection t ps b);
              check tbool "negative introspection" true
                (State_iso.Laws.s5_negative_introspection t ps b);
              check tbool "conjunction" true
                (State_iso.Laws.conjunction t ps b received))
            [ sent; received ])
        [ s0; s1; d ])
    [ tfull; tcounters; tlast ]

let test_state_refinement () =
  check tbool "full refines counters" true (State_iso.Laws.refines tfull tcounters);
  check tbool "full refines last" true (State_iso.Laws.refines tfull tlast);
  (* in ping-pong, counts determine history, so counters also refines
     full there; a branching system separates them *)
  let branching =
    Spec.make ~n:1 (fun _ history ->
        if history = [] then [ Spec.Do "a"; Spec.Do "b" ] else [])
  in
  let ub = Universe.enumerate ~mode:`Full branching ~depth:1 in
  let bfull = State_iso.make ub State_iso.full in
  let bcounters = State_iso.make ub State_iso.counters in
  check tbool "full refines counters (branching)" true
    (State_iso.Laws.refines bfull bcounters);
  check tbool "counters does not refine full (branching)" false
    (State_iso.Laws.refines bcounters bfull)

let test_state_coarser_knows_less () =
  List.iter
    (fun coarse ->
      List.iter
        (fun ps ->
          List.iter
            (fun b ->
              check tbool "coarser knows less" true
                (State_iso.Laws.coarser_knows_less tfull coarse ps b))
            [ sent; received ])
        [ s0; s1; d ])
    [ tcounters; tlast ]

let test_state_forgetful_loses_knowledge () =
  (* under the counters view, p1 cannot distinguish receiving ping from
     any other single receive... in ping-pong there is only one message
     to p1, so use a strict-knowledge comparison point: somewhere,
     full-knowledge holds and counters-knowledge of a content-dependent
     fact fails. Build the fact "the ping payload was 'ping'" — true
     everywhere here, so instead compare partition sizes. *)
  let full_cls = State_iso.class_of tfull s1 0 in
  let coarse_cls = State_iso.class_of tcounters s1 0 in
  check tbool "coarse classes at least as large" true
    (Bitset.cardinal coarse_cls >= Bitset.cardinal full_cls)

let test_state_iso_traces () =
  let za = Trace.of_list [ Event.internal ~pid:p0 ~lseq:0 "a" ] in
  let zb = Trace.of_list [ Event.internal ~pid:p0 ~lseq:0 "b" ] in
  (* counters view cannot tell apart two different internal events *)
  check tbool "counters identifies" true
    (State_iso.iso_traces State_iso.counters za zb (Pset.singleton p0));
  check tbool "full distinguishes" false
    (State_iso.iso_traces State_iso.full za zb (Pset.singleton p0));
  check tbool "last-event distinguishes" false
    (State_iso.iso_traces State_iso.last_event za zb (Pset.singleton p0))

(* -- chain ablation --------------------------------------------------------- *)

let test_chain_naive_agrees () =
  let chatter_u = Universe.enumerate ~mode:`Full (Fixtures.chatter ~n:2 ~k:2) ~depth:4 in
  let psets_choices =
    [ [ s0 ]; [ s1 ]; [ s0; s1 ]; [ s1; s0 ]; [ d; s0 ] ]
  in
  Universe.iter
    (fun zi z ->
      List.iter
        (fun xi ->
          let x = Universe.comp chatter_u xi in
          if Trace.is_prefix x z then
            List.iter
              (fun psets ->
                check tbool "naive = dp" (Chain.exists ~n:2 ~x ~z psets)
                  (Chain.exists_naive ~n:2 ~x ~z psets))
              psets_choices)
        (Universe.prefixes_of chatter_u zi))
    chatter_u

let suite =
  [
    ("group everyone/someone", `Quick, test_group_everyone_vs_someone);
    ("group distributed = knows", `Quick, test_group_distributed_is_knows);
    ("group laws", `Quick, test_group_laws);
    ("group E-iterate to CK", `Quick, test_group_e_iterate_limits_to_ck);
    ("cut basics", `Quick, test_cut_basics);
    ("cut lattice", `Quick, test_cut_lattice_ops);
    ("cut count relay", `Quick, test_cut_count_relay);
    ("cut independent events", `Quick, test_cut_independent_events);
    ("cut of prefix", `Quick, test_cut_of_prefix);
    ("observation 2 (causal past)", `Quick, test_observation2_causal_past);
    ("state full coincides", `Quick, test_state_full_coincides);
    ("state S5 under all views", `Quick, test_state_s5);
    ("state refinement", `Quick, test_state_refinement);
    ("state coarser knows less", `Quick, test_state_coarser_knows_less);
    ("state forgetful partitions", `Quick, test_state_forgetful_loses_knowledge);
    ("state iso traces", `Quick, test_state_iso_traces);
    ("chain naive = dp", `Quick, test_chain_naive_agrees);
  ]
