(* Replay universes: a recorded run as a system, and the structural
   identity replay-universe = consistent-cut lattice. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let p2 = Fixtures.p2

let m01 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m"
let m12 = Msg.make ~src:p1 ~dst:p2 ~seq:0 ~payload:"m"

let relay =
  Trace.of_list
    [
      Event.send ~pid:p0 ~lseq:0 m01;
      Event.receive ~pid:p1 ~lseq:0 m01;
      Event.send ~pid:p1 ~lseq:1 m12;
      Event.receive ~pid:p2 ~lseq:0 m12;
    ]

let indep =
  Trace.of_list
    [
      Event.internal ~pid:p0 ~lseq:0 "a";
      Event.internal ~pid:p1 ~lseq:0 "b";
      Event.internal ~pid:p0 ~lseq:1 "c";
    ]

let test_replay_contains_original () =
  List.iter
    (fun (z, n) ->
      let spec = Replay.spec_of_trace ~n z in
      check tbool "z valid in its own replay" true (Spec.valid spec z))
    [ (relay, 3); (indep, 2) ]

let test_replay_universe_is_cut_lattice () =
  (* one canonical computation per consistent cut *)
  List.iter
    (fun (z, n) ->
      let u = Replay.universe_of_trace ~n z in
      check tint "replay = cuts" (Cut.count_consistent ~n z) (Universe.size u))
    [ (relay, 3); (indep, 2) ]

let test_replay_universe_on_sim_run () =
  (* a small real run from the engine *)
  let params = { Underlying.default with n = 3; budget = 4; seed = 4L } in
  let r = Underlying.run params in
  let z = r.Hpl_sim.Engine.trace in
  if Trace.length z <= 12 then begin
    let u = Replay.universe_of_trace ~n:3 z in
    check tint "matches cut count" (Cut.count_consistent ~n:3 z) (Universe.size u)
  end

let test_replay_possibly_agrees_with_detect () =
  let preds =
    [
      (fun sub -> Trace.length sub = 2);
      (fun sub -> Trace.in_flight sub <> []);
      (fun sub -> Trace.local_length sub p0 = 1 && Trace.local_length sub p1 = 1);
    ]
  in
  List.iter
    (fun (z, n) ->
      let u = Replay.universe_of_trace ~n z in
      List.iteri
        (fun i b ->
          let via_universe =
            Universe.fold (fun _ c acc -> acc || b c) u false
          in
          let via_cuts = Detect.possibly ~n z b in
          check tbool (Printf.sprintf "pred %d agrees" i) via_cuts via_universe)
        preds)
    [ (relay, 3); (indep, 2) ]

let test_knew_at_relay () =
  (* "p0 sent m" — relative to the observed run, p2 can first be said
     to know it after its receive (position 3) *)
  let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0) in
  check Alcotest.(option int) "p0 immediately" (Some 0)
    (Replay.knew_at ~n:3 relay (Pset.singleton p0) sent);
  check Alcotest.(option int) "p1 at its receive" (Some 1)
    (Replay.knew_at ~n:3 relay (Pset.singleton p1) sent);
  check Alcotest.(option int) "p2 at its receive" (Some 3)
    (Replay.knew_at ~n:3 relay (Pset.singleton p2) sent)

let test_knew_at_never () =
  (* in the independent trace, p1 never learns p0 acted *)
  let p0_acted = Prop.make "p0 acted" (fun z -> Trace.local_length z p0 > 0) in
  check Alcotest.(option int) "never" None
    (Replay.knew_at ~n:2 indep (Pset.singleton p1) p0_acted)

let test_replay_knowledge_coarser_than_truth () =
  (* relative to the replay universe, every receive teaches its
     receiver exactly the causal past: p2 knows 'p1 relayed' after
     position 3, and the chain is in the trace (theorem 5 on the
     replay universe) *)
  let u = Replay.universe_of_trace ~n:3 relay in
  let relayed =
    Prop.make "p1 relayed" (fun z -> Trace.send_count z p1 > 0)
  in
  let k2 = Knowledge.knows u (Pset.singleton p2) relayed in
  check tbool "p2 knows at end" true (Prop.eval k2 relay);
  let x = Trace.of_list (List.filteri (fun i _ -> i < 3) (Trace.to_list relay)) in
  let r = Transfer.explain_gain u [ Pset.singleton p2 ] relayed ~x ~y:relay in
  check tbool "gain premise" true r.Transfer.premise;
  check tbool "chain found" true (r.Transfer.chain <> None)

let test_replay_rejects_ill_formed () =
  let bad = Trace.of_list [ Event.receive ~pid:p1 ~lseq:0 m01 ] in
  check tbool "raises" true
    (try
       ignore (Replay.spec_of_trace ~n:2 bad);
       false
     with Invalid_argument _ -> true)

let qcheck_cut_identity =
  (* the identity holds for random computations of random systems *)
  let gen =
    QCheck.make
      ~print:(fun (_, z) -> Trace.to_string z)
      QCheck.Gen.(
        int_range 0 6 >>= fun steps ->
        list_size (return steps) (int_bound 1000) >>= fun choices ->
        let spec = Fixtures.chatter ~n:3 ~k:2 in
        let rec walk z k cs =
          if k >= steps then z
          else
            match (Spec.enabled spec z, cs) with
            | [], _ | _, [] -> z
            | events, c :: rest ->
                walk
                  (Trace.snoc z (List.nth events (abs c mod List.length events)))
                  (k + 1) rest
        in
        return (steps, walk Trace.empty 0 choices))
  in
  QCheck.Test.make ~name:"replay universe = cut lattice (random)" ~count:100 gen
    (fun (_, z) ->
      Universe.size (Replay.universe_of_trace ~n:3 z)
      = Cut.count_consistent ~n:3 z)

let suite =
  [
    ("replay contains original", `Quick, test_replay_contains_original);
    ("replay = cut lattice", `Quick, test_replay_universe_is_cut_lattice);
    ("replay on sim run", `Quick, test_replay_universe_on_sim_run);
    ("possibly agrees with Detect", `Quick, test_replay_possibly_agrees_with_detect);
    ("knew_at relay", `Quick, test_knew_at_relay);
    ("knew_at never", `Quick, test_knew_at_never);
    ("replay knowledge + chain", `Quick, test_replay_knowledge_coarser_than_truth);
    ("replay rejects ill-formed", `Quick, test_replay_rejects_ill_formed);
    QCheck_alcotest.to_alcotest ~verbose:false qcheck_cut_identity;
  ]
