(* Happened-before and process chains (§3.1–3.2). *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let p2 = Fixtures.p2

(* A 3-process relay: p0 sends to p1, p1 relays to p2. *)
let m01 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m"
let m12 = Msg.make ~src:p1 ~dst:p2 ~seq:0 ~payload:"m"
let e_send0 = Event.send ~pid:p0 ~lseq:0 m01
let e_recv1 = Event.receive ~pid:p1 ~lseq:0 m01
let e_send1 = Event.send ~pid:p1 ~lseq:1 m12
let e_recv2 = Event.receive ~pid:p2 ~lseq:0 m12
let e_tick2 = Event.internal ~pid:p2 ~lseq:1 "t"
let relay = Trace.of_list [ e_send0; e_recv1; e_send1; e_recv2; e_tick2 ]
let ts = Causality.compute ~n:3 relay

let test_vector_timestamps () =
  check Alcotest.(array int) "vt send0" [| 1; 0; 0 |] (Causality.vt ts 0);
  check Alcotest.(array int) "vt recv1" [| 1; 1; 0 |] (Causality.vt ts 1);
  check Alcotest.(array int) "vt send1" [| 1; 2; 0 |] (Causality.vt ts 2);
  check Alcotest.(array int) "vt recv2" [| 1; 2; 1 |] (Causality.vt ts 3);
  check Alcotest.(array int) "vt tick2" [| 1; 2; 2 |] (Causality.vt ts 4)

let test_hb_chain () =
  (* every earlier position happened-before every later one here *)
  for i = 0 to 4 do
    for j = i to 4 do
      check tbool (Printf.sprintf "hb %d %d" i j) true (Causality.hb ts i j)
    done
  done;
  check tbool "no back hb" false (Causality.hb ts 3 0)

let test_hb_reflexive () =
  for i = 0 to 4 do
    check tbool "reflexive" true (Causality.hb ts i i)
  done

let test_concurrent () =
  (* two independent internal events *)
  let a = Event.internal ~pid:p0 ~lseq:0 "a" in
  let b = Event.internal ~pid:p1 ~lseq:0 "b" in
  let t2 = Causality.compute ~n:2 (Trace.of_list [ a; b ]) in
  check tbool "concurrent" true (Causality.concurrent t2 0 1);
  check tbool "not hb" false (Causality.hb t2 0 1)

let test_causal_past () =
  check Alcotest.(list int) "past of recv2" [ 0; 1; 2; 3 ] (Causality.causal_past ts 3);
  check Alcotest.(list int) "past of send0" [ 0 ] (Causality.causal_past ts 0)

let test_position_of () =
  check Alcotest.(option int) "found" (Some 2) (Causality.position_of ts e_send1);
  check Alcotest.(option int) "missing" None
    (Causality.position_of ts (Event.internal ~pid:p0 ~lseq:9 "zz"))

let test_ill_formed_rejected () =
  let bad = Trace.of_list [ e_recv1 ] in
  check tbool "raises" true
    (try
       ignore (Causality.compute ~n:3 bad);
       false
     with Invalid_argument _ -> true)

(* -- process chains --------------------------------------------------- *)

let s0 = Pset.singleton p0
let s1 = Pset.singleton p1
let s2 = Pset.singleton p2

let test_chain_simple () =
  check tbool "<p0 p1 p2>" true (Chain.exists ~n:3 ~z:relay [ s0; s1; s2 ]);
  check tbool "<p2 p1 p0> absent" false (Chain.exists ~n:3 ~z:relay [ s2; s1; s0 ]);
  check tbool "<p0 p2>" true (Chain.exists ~n:3 ~z:relay [ s0; s2 ]);
  check tbool "<p1>" true (Chain.exists ~n:3 ~z:relay [ s1 ])

let test_chain_witness () =
  match Chain.find ~n:3 ~z:relay [ s0; s1; s2 ] with
  | None -> Alcotest.fail "expected witness"
  | Some es ->
      check tint "three events" 3 (List.length es);
      List.iteri
        (fun i e ->
          let expect = [ s0; s1; s2 ] in
          check tbool "on correct pset" true (Event.on e (List.nth expect i)))
        es

let test_chain_repeated_sets () =
  (* observation 1: "P" may be replaced by "P P" *)
  check tbool "<p0 p0 p1 p1>" true
    (Chain.exists ~n:3 ~z:relay [ s0; s0; s1; s1 ])

let test_chain_in_suffix () =
  (* suffix after the first two events: only p1's send onwards *)
  let x = Trace.of_list [ e_send0; e_recv1 ] in
  check tbool "<p0> not in suffix" false (Chain.exists ~n:3 ~x ~z:relay [ s0 ]);
  check tbool "<p1 p2> in suffix" true (Chain.exists ~n:3 ~x ~z:relay [ s1; s2 ]);
  (* the relayed causality still counts within the suffix *)
  check tbool "<p1 p2 p2>" true (Chain.exists ~n:3 ~x ~z:relay [ s1; s2; s2 ])

let test_chain_pset_unions () =
  check tbool "<{p0,p1} p2>" true
    (Chain.exists ~n:3 ~z:relay [ Pset.of_list [ p0; p1 ]; s2 ]);
  check tbool "<∅-set event impossible>" false
    (Chain.exists ~n:3 ~z:relay [ Pset.empty; s2 ])

let test_chain_empty_list_rejected () =
  check tbool "raises" true
    (try
       ignore (Chain.exists ~n:3 ~z:relay []);
       false
     with Invalid_argument _ -> true)

let test_chain_concurrent_absent () =
  let a = Event.internal ~pid:p0 ~lseq:0 "a" in
  let b = Event.internal ~pid:p1 ~lseq:0 "b" in
  let z = Trace.of_list [ a; b ] in
  check tbool "no <p0 p1> chain" false (Chain.exists ~n:2 ~z [ s0; s1 ]);
  check tbool "no <p1 p0> chain" false (Chain.exists ~n:2 ~z [ s1; s0 ]);
  check tbool "<p0> alone" true (Chain.exists ~n:2 ~z [ s0 ])

let test_of_pids () =
  check tint "singletons" 3 (List.length (Chain.of_pids [ p0; p1; p2 ]))

(* -- theorem 1 --------------------------------------------------------- *)

let chatter_u = Universe.enumerate ~mode:`Full (Fixtures.chatter ~n:2 ~k:2) ~depth:4

let test_theorem1_dichotomy_exhaustive () =
  (* over all (prefix, computation) pairs and several pset sequences *)
  let psets_choices =
    [
      [ Pset.singleton p0 ];
      [ Pset.singleton p1 ];
      [ Pset.singleton p0; Pset.singleton p1 ];
      [ Pset.singleton p1; Pset.singleton p0 ];
      [ Pset.all 2; Pset.singleton p0 ];
    ]
  in
  let count = ref 0 in
  Universe.iter
    (fun _ z ->
      List.iter
        (fun xi ->
          let x = Universe.comp chatter_u xi in
          if Trace.is_prefix x z then
            List.iter
              (fun psets ->
                incr count;
                check tbool "dichotomy" true
                  (Theorem1.dichotomy_holds chatter_u ~x ~z psets))
              psets_choices)
        (Universe.prefixes_of chatter_u (Universe.find_exn chatter_u z)))
    chatter_u;
  check tbool "covered instances" true (!count > 500)

let test_theorem1_iso_side () =
  (* x = z: isomorphism side always holds (reflexivity) *)
  Universe.iter
    (fun _ z ->
      let v = Theorem1.check chatter_u ~x:z ~z [ Pset.singleton p0 ] in
      check tbool "iso holds" true v.Theorem1.iso)
    chatter_u

let test_theorem1_chain_side () =
  (* in the relay system, take x = ε, z = relay: p0's knowledge must
     have flowed; the chain <p0 p1 p2> exists and iso fails for the
     right sequences *)
  let spec_relay =
    Spec.make ~n:3 (fun p history ->
        match (Pid.to_int p, history) with
        | 0, [] -> [ Spec.Send_to (p1, "m") ]
        | 1, [] -> [ Spec.Recv_any ]
        | 1, [ _ ] -> [ Spec.Send_to (p2, "m") ]
        | 2, [] -> [ Spec.Recv_any ]
        | 2, [ _ ] -> [ Spec.Do "t" ]
        | _ -> [])
  in
  let u = Universe.enumerate ~mode:`Full spec_relay ~depth:5 in
  let v = Theorem1.check u ~x:Trace.empty ~z:relay [ s0; s1; s2 ] in
  check tbool "chain found" true (v.Theorem1.chain <> None)

let suite =
  [
    ("vector timestamps", `Quick, test_vector_timestamps);
    ("hb chain", `Quick, test_hb_chain);
    ("hb reflexive", `Quick, test_hb_reflexive);
    ("concurrent", `Quick, test_concurrent);
    ("causal past", `Quick, test_causal_past);
    ("position_of", `Quick, test_position_of);
    ("ill-formed rejected", `Quick, test_ill_formed_rejected);
    ("chain simple", `Quick, test_chain_simple);
    ("chain witness", `Quick, test_chain_witness);
    ("chain repeated sets", `Quick, test_chain_repeated_sets);
    ("chain in suffix", `Quick, test_chain_in_suffix);
    ("chain pset unions", `Quick, test_chain_pset_unions);
    ("chain empty rejected", `Quick, test_chain_empty_list_rejected);
    ("chain concurrent absent", `Quick, test_chain_concurrent_absent);
    ("of_pids", `Quick, test_of_pids);
    ("theorem1 dichotomy", `Quick, test_theorem1_dichotomy_exhaustive);
    ("theorem1 iso side", `Quick, test_theorem1_iso_side);
    ("theorem1 chain side", `Quick, test_theorem1_chain_side);
  ]
