(* Closing the loop: a termination detector IS a knowledge-gain device.

   A miniature diffusing computation with Dijkstra-Scholten signalling,
   expressed as a Spec so the exact engine applies:

     root (p0):  sends one work message to p1; after receiving the
                 signal it announces termination (internal "detected").
     p1:         receives work, may spawn one sub-work to p2, then
                 signals root after its subtree quiesces.
     p2:         receives work, signals p1.

   The checks: at every computation where the root has announced, the
   root KNOWS (exactly, over the bounded universe) that the underlying
   computation has terminated; before the signal arrives it does NOT
   know; and the knowledge-gain chain of Theorem 5 is the signal path
   back to the root. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool

let p0 = Pid.of_int 0
let p1 = Pid.of_int 1
let p2 = Pid.of_int 2

let work = "work"
let signal = "sig"
let detected = "detected"

let count p history = List.length (List.filter p history)

let sends_of tag history =
  count
    (fun e ->
      match e.Event.kind with
      | Event.Send m -> String.equal m.Msg.payload tag
      | _ -> false)
    history

let recvs_of tag history =
  count
    (fun e ->
      match e.Event.kind with
      | Event.Receive m -> String.equal m.Msg.payload tag
      | _ -> false)
    history

let announced history =
  List.exists
    (fun e ->
      match e.Event.kind with
      | Event.Internal t -> String.equal t detected
      | _ -> false)
    history

(* p1 nondeterministically either signals immediately (leaf) or spawns
   a sub-task to p2 and signals after p2's signal. *)
let spec =
  Spec.make ~n:3 (fun p history ->
      let i = Pid.to_int p in
      match i with
      | 0 ->
          if history = [] then [ Spec.Send_to (p1, work) ]
          else if recvs_of signal history = 1 && not (announced history) then
            [ Spec.Do detected ]
          else if recvs_of signal history = 0 then [ Spec.Recv_any ]
          else []
      | 1 ->
          if recvs_of work history = 0 then [ Spec.Recv_any ]
          else if sends_of work history = 0 && sends_of signal history = 0 then
            (* choice point: be a leaf (signal now) or spawn to p2 *)
            [ Spec.Send_to (p0, signal); Spec.Send_to (p2, work) ]
          else if
            sends_of work history = 1
            && recvs_of signal history = 0
          then [ Spec.Recv_any ]
          else if
            sends_of work history = 1
            && recvs_of signal history = 1
            && sends_of signal history = 0
          then [ Spec.Send_to (p0, signal) ]
          else []
      | _ ->
          if recvs_of work history = 0 then [ Spec.Recv_any ]
          else if sends_of signal history = 0 then [ Spec.Send_to (p1, signal) ]
          else [])

let u = Universe.enumerate ~mode:`Full spec ~depth:10

(* underlying termination: all work messages delivered *)
let terminated =
  Prop.make "underlying terminated" (fun z ->
      List.for_all
        (fun m -> not (String.equal m.Msg.payload work))
        (Trace.in_flight z))

let root_announced =
  Prop.make "root announced" (fun z -> announced (Trace.proj z p0))

let root_knows_terminated = lazy (Knowledge.knows u (Pset.singleton p0) terminated)

let test_announcement_implies_knowledge () =
  (* wherever the root announced, it exactly-knows termination *)
  let k = Lazy.force root_knows_terminated in
  Universe.iter
    (fun _ z ->
      if Prop.eval root_announced z then
        check tbool "announce => knows" true (Prop.eval k z))
    u

let test_no_premature_knowledge () =
  (* before receiving the signal the root never knows termination
     (except at the very start, when nothing was sent yet: ε) *)
  let k = Lazy.force root_knows_terminated in
  Universe.iter
    (fun _ z ->
      let root_got_signal = recvs_of signal (Trace.proj z p0) > 0 in
      if (not root_got_signal) && Trace.length z > 0 && Prop.eval k z then
        Alcotest.failf "premature knowledge at %s" (Trace.to_string z))
    u

let test_detection_is_knowledge_gain_with_chain () =
  (* pick the full leaf-run; between the send of work and the
     announcement, the root gains knowledge, and Theorem 5's chain runs
     from the workers back to the root *)
  let m_work = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:work in
  let m_sig = Msg.make ~src:p1 ~dst:p0 ~seq:0 ~payload:signal in
  let x = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 m_work ] in
  let y =
    Trace.append x
      [
        Event.receive ~pid:p1 ~lseq:0 m_work;
        Event.send ~pid:p1 ~lseq:1 m_sig;
        Event.receive ~pid:p0 ~lseq:1 m_sig;
        Event.internal ~pid:p0 ~lseq:2 detected;
      ]
  in
  check tbool "y valid" true (Spec.valid spec y);
  let r =
    Transfer.explain_gain u [ Pset.singleton p0 ] terminated ~x ~y
  in
  check tbool "gain premise" true r.Transfer.premise;
  check tbool "chain exists" true (r.Transfer.chain <> None);
  (* and the narrated version names the signal receive *)
  match Explain.gain u [ Pset.singleton p0 ] terminated ~x ~y with
  | Some report ->
      let text = String.concat " " report.Explain.narrative in
      let contains_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check tbool "narrative mentions the signal" true (contains_sub text signal)
  | None -> Alcotest.fail "expected explanation"

let test_signal_economy () =
  (* the §5 bound in miniature: every complete run has exactly as many
     signal messages as work messages *)
  Universe.iter
    (fun _ z ->
      if Prop.eval root_announced z then begin
        let works =
          List.length
            (List.filter (fun m -> String.equal m.Msg.payload work) (Trace.sent z))
        in
        let sigs =
          List.length
            (List.filter (fun m -> String.equal m.Msg.payload signal) (Trace.sent z))
        in
        check tbool "signals = works" true (sigs = works)
      end)
    u

let suite =
  [
    ("announcement implies exact knowledge", `Quick, test_announcement_implies_knowledge);
    ("no premature knowledge", `Quick, test_no_premature_knowledge);
    ("detection = knowledge gain + chain", `Quick, test_detection_is_knowledge_gain_with_chain);
    ("signal economy (mini lower bound)", `Quick, test_signal_economy);
  ]
