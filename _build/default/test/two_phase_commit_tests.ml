(* Two-phase commit: agreement/validity, the blocking window, and the
   exact knowledge statement behind it. *)
open Hpl_core
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_all_yes_commits () =
  let o = Two_phase_commit.run Two_phase_commit.default in
  check tbool "agreement" true o.Two_phase_commit.agreement;
  check tbool "validity" true o.Two_phase_commit.validity;
  check tint "nobody blocked" 0 o.Two_phase_commit.blocked;
  Array.iter
    (fun d -> check Alcotest.(option string) "commit" (Some "commit") d)
    o.Two_phase_commit.decisions

let test_one_no_aborts () =
  let o =
    Two_phase_commit.run { Two_phase_commit.default with no_voters = [ 2 ] }
  in
  check tbool "agreement" true o.Two_phase_commit.agreement;
  check tbool "validity" true o.Two_phase_commit.validity;
  Array.iter
    (fun d -> check Alcotest.(option string) "abort" (Some "abort") d)
    o.Two_phase_commit.decisions

let test_crash_in_window_blocks () =
  (* with seed 37 the last vote lands after t=10: crashing the
     coordinator at t=10 leaves every participant undecided although
     they have already voted *)
  let o =
    Two_phase_commit.run
      { Two_phase_commit.default with crash_coordinator_at = Some 10.0 }
  in
  check tint "all participants blocked" 3 o.Two_phase_commit.blocked;
  (* they really did vote before the crash *)
  let votes_sent =
    List.length
      (List.filter
         (fun m -> Wire.is "2pc-yes" m.Msg.payload)
         (Trace.sent o.Two_phase_commit.trace))
  in
  check tbool "votes were cast" true (votes_sent >= 1);
  check tbool "agreement still holds (vacuously)" true o.Two_phase_commit.agreement

let test_crash_after_broadcast_harmless () =
  let o =
    Two_phase_commit.run
      { Two_phase_commit.default with crash_coordinator_at = Some 100.0 }
  in
  check tint "nobody blocked" 0 o.Two_phase_commit.blocked

let test_agreement_across_seeds_and_votes () =
  List.iter
    (fun seed ->
      List.iter
        (fun no_voters ->
          let o =
            Two_phase_commit.run { Two_phase_commit.default with seed; no_voters }
          in
          check tbool "agreement" true o.Two_phase_commit.agreement;
          check tbool "validity" true o.Two_phase_commit.validity)
        [ []; [ 1 ]; [ 1; 3 ] ])
    [ 1L; 2L; 3L ]

let test_message_count () =
  (* n-1 prepares + n-1 votes + n-1 outcomes *)
  let o = Two_phase_commit.run Two_phase_commit.default in
  check tint "3(n-1)" (3 * 3) o.Two_phase_commit.messages

(* -- exact ----------------------------------------------------------------- *)

let u = Universe.enumerate ~mode:`Canonical Two_phase_commit.spec ~depth:8

let test_uncertainty_window_exists () =
  check tbool "uncertainty is real" true (Two_phase_commit.uncertainty_is_real u)

let test_knowledge_requires_receive () =
  (* §4.3 corollary instantiated: 'committed' is local to the
     coordinator, so a participant can only come to know it by
     receiving — verified over all pairs in the universe *)
  let a = Pset.singleton (Pid.of_int 1) in
  Universe.iter
    (fun _ x ->
      Universe.iter
        (fun _ y ->
          check tbool "gain => receive" true
            (Transfer.corollary_gain_receives u ~p:a
               ~b:Two_phase_commit.committed ~x ~y))
        u)
    u

let test_decision_mutually_exclusive () =
  Universe.iter
    (fun _ z ->
      check tbool "not both" false
        (Prop.eval Two_phase_commit.committed z
        && Prop.eval Two_phase_commit.aborted z))
    u

let test_commit_requires_both_yes () =
  (* validity at the spec level: committed implies both voted yes *)
  Universe.iter
    (fun _ z ->
      if Prop.eval Two_phase_commit.committed z then begin
        let yes_votes =
          List.length
            (List.filter
               (fun m -> String.equal m.Msg.payload "yes")
               (Trace.received z))
        in
        check tbool "two yes votes received" true (yes_votes >= 2)
      end)
    u

let suite =
  [
    ("all yes commits", `Quick, test_all_yes_commits);
    ("one no aborts", `Quick, test_one_no_aborts);
    ("crash in window blocks", `Quick, test_crash_in_window_blocks);
    ("crash after broadcast harmless", `Quick, test_crash_after_broadcast_harmless);
    ("agreement across seeds", `Quick, test_agreement_across_seeds_and_votes);
    ("message count", `Quick, test_message_count);
    ("uncertainty window exists", `Quick, test_uncertainty_window_exists);
    ("knowledge requires receive", `Slow, test_knowledge_requires_receive);
    ("decisions exclusive", `Quick, test_decision_mutually_exclusive);
    ("commit requires yes votes", `Quick, test_commit_requires_both_yes);
  ]
