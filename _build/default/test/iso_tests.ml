(* Isomorphism, composed relations, and the Figure 3-1 diagram. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p = Fixtures.p0
let q = Fixtures.p1
let sp = Pset.singleton p
let sq = Pset.singleton q
let d = Pset.all 2

(* Figure 3-1's four computations, realized in the [indep] system:
   x = [a;b], y = [a], z = [b;a], w = [b]. *)
let ea = Event.internal ~pid:p ~lseq:0 "a"
let eb = Event.internal ~pid:q ~lseq:0 "b"
let fx = Trace.of_list [ ea; eb ]
let fy = Trace.of_list [ ea ]
let fz = Trace.of_list [ eb; ea ]
let fw = Trace.of_list [ eb ]
let ufull = Universe.enumerate ~mode:`Full Fixtures.indep ~depth:4

let test_iso_basics () =
  check tbool "x [p] y" true (Isomorphism.iso_p fx fy p);
  check tbool "¬ x [q] y" false (Isomorphism.iso_p fx fy q);
  check tbool "x [{p,q}] z" true (Isomorphism.iso fx fz d);
  check tbool "empty set relates all" true (Isomorphism.iso fy fw Pset.empty);
  check tbool "x [q] w" true (Isomorphism.iso_p fx fw q);
  check tbool "¬ y [p] w" false (Isomorphism.iso_p fy fw p);
  check tbool "¬ y [q] w" false (Isomorphism.iso_p fy fw q)

let test_permutation_of_iso_d () =
  (* x [D] y with x ≠ y implies y is a permutation of x *)
  check tbool "x,z permutation" true (Trace.permutation_of fx fz);
  check tbool "x [D] z" true (Isomorphism.iso fx fz d)

let idx t = Universe.find_exn ufull t

let test_universe_related () =
  check tbool "related p" true (Isomorphism.related ufull sp (idx fx) (idx fy));
  check tbool "not related q" false
    (Isomorphism.related ufull sq (idx fx) (idx fy));
  let cls = Isomorphism.class_of ufull sp (idx fx) in
  check tbool "class contains y" true (Bitset.mem cls (idx fy));
  check tbool "class contains self" true (Bitset.mem cls (idx fx))

let test_largest_label () =
  check tbool "x,y label {p}" true
    (Pset.equal sp (Isomorphism.largest_label d fx fy));
  check tbool "x,z label D" true
    (Pset.equal d (Isomorphism.largest_label d fx fz));
  check tbool "y,w label empty" true
    (Pset.is_empty (Isomorphism.largest_label d fy fw))

(* -- composed relations: Example 1 continued ------------------------- *)

let test_composed_example1 () =
  (* y [p q] w via z, and w [q p] y (inversion) *)
  check tbool "y [p q] w" true
    (Relations.related ufull [ sp; sq ] (idx fy) (idx fw));
  check tbool "w [q p] y" true
    (Relations.related ufull [ sq; sp ] (idx fw) (idx fy));
  check tbool "y [q p] z" true
    (Relations.related ufull [ sq; sp ] (idx fy) (idx fz));
  check tbool "y [q p q] z" true
    (Relations.related ufull [ sq; sp; sq ] (idx fy) (idx fz));
  (* direct relation is not composed: ¬ y [q] w and ¬ y [p] w *)
  check tbool "¬ y [q] w" false (Relations.related ufull [ sq ] (idx fy) (idx fw));
  check tbool "¬ y [p] w" false (Relations.related ufull [ sp ] (idx fy) (idx fw))

let test_reachable_identity () =
  let r = Relations.reachable ufull [] (idx fx) in
  check tint "identity" 1 (Bitset.cardinal r);
  check tbool "self" true (Bitset.mem r (idx fx))

let test_related_traces () =
  check tbool "trace-level" true (Relations.related_traces ufull [ sp; sq ] fy fw)

(* -- the ten laws over random instances ------------------------------ *)

let rand_state = Random.State.make [| 0x5eed |]

let random_pset n st =
  let s = ref Pset.empty in
  for i = 0 to n - 1 do
    if Random.State.bool st then s := Pset.add (Pid.of_int i) !s
  done;
  !s

let random_instances u count f =
  let n = Spec.n (Universe.spec u) in
  for _ = 1 to count do
    let i = Random.State.int rand_state (Universe.size u) in
    let j = Random.State.int rand_state (Universe.size u) in
    let ps = random_pset n rand_state in
    let qs = random_pset n rand_state in
    f i j ps qs
  done

let test_law_equivalence () =
  List.iter
    (fun ps -> check tbool "equivalence" true (Isomorphism.Laws.equivalence ufull ps))
    [ Pset.empty; sp; sq; d ]

let test_law_idempotence () =
  random_instances ufull 100 (fun i j ps _ ->
      check tbool "[PP]=[P]" true (Isomorphism.Laws.idempotence ufull ps i j))

let test_law_reflexivity () =
  random_instances ufull 100 (fun i _ ps qs ->
      check tbool "x[P1..Pn]x" true
        (Isomorphism.Laws.reflexivity ufull [ ps; qs; ps ] i))

let test_law_inversion () =
  random_instances ufull 100 (fun i j ps qs ->
      check tbool "inversion" true
        (Isomorphism.Laws.inversion ufull [ ps; qs ] i j))

let test_law_concatenation () =
  random_instances ufull 60 (fun i j ps qs ->
      check tbool "concatenation" true
        (Isomorphism.Laws.concatenation ufull [ ps ] [ qs ] i j))

let test_law_union_inter () =
  random_instances ufull 100 (fun i j ps qs ->
      check tbool "[P∪Q]=[P]∩[Q]" true
        (Isomorphism.Laws.union_inter ufull ps qs i j))

let test_law_monotonicity () =
  random_instances ufull 100 (fun i j ps qs ->
      check tbool "Q⊇P ⇒ [Q]⊆[P]" true
        (Isomorphism.Laws.monotonicity ufull ps (Pset.union ps qs) i j))

let test_law_subsumption () =
  random_instances ufull 100 (fun i j ps qs ->
      let sup = Pset.union ps qs in
      check tbool "Q⊇P ⇒ [QP]=[P]=[PQ]" true
        (Isomorphism.Laws.subsumption ufull sup ps i j))

let test_law8_strictness () =
  (* the paper proves [Q] ⊆ [P] implies Q ⊇ P via: p ∈ P−Q has an event
     in some computation, so x [Q] (x;e) but ¬ x [P] (x;e). Exhibit it. *)
  let x = Trace.empty and xe = fy (* = (ε; a) with a on p *) in
  check tbool "x [q] (x;e)" true (Isomorphism.iso x xe sq);
  check tbool "¬ x [p] (x;e)" false (Isomorphism.iso x xe sp)

(* -- isomorphism diagram --------------------------------------------- *)

let diagram =
  Iso_diagram.of_computations ~all:d
    [ ("x", fx); ("y", fy); ("z", fz); ("w", fw) ]

let pset_opt = Alcotest.testable
    (Fmt.option (fun fmt ps -> Format.fprintf fmt "%a" Pset.pp ps))
    (Option.equal Pset.equal)

let test_figure_3_1 () =
  (* the figure's stated relationships *)
  check pset_opt "x-y : [p]" (Some sp) (Iso_diagram.label diagram "x" "y");
  check pset_opt "x-z : [{p,q}]" (Some d) (Iso_diagram.label diagram "x" "z");
  check pset_opt "z-w : [q]" (Some sq) (Iso_diagram.label diagram "z" "w");
  check pset_opt "y-z : [p]" (Some sp) (Iso_diagram.label diagram "y" "z");
  check pset_opt "y-w : none" None (Iso_diagram.label diagram "y" "w");
  check tbool "self loops labelled [D]" true
    (Pset.equal d (Iso_diagram.self_label diagram))

let test_diagram_edges () =
  let edges = Iso_diagram.edges diagram in
  (* all pairs except y-w are related: C(4,2) - 1 = 5 edges *)
  check tint "edge count" 5 (List.length edges);
  check Alcotest.(list string) "vertices" [ "x"; "y"; "z"; "w" ]
    (Iso_diagram.vertices diagram)

let test_diagram_dot () =
  let dot = Iso_diagram.to_dot diagram in
  check tbool "mentions graph" true
    (String.length dot > 0 && String.sub dot 0 5 = "graph");
  (* y -- w must not appear *)
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check tbool "has x--y edge" true
    (contains_sub dot "\"x\" -- \"y\"");
  check tbool "no y--w edge" false (contains_sub dot "\"y\" -- \"w\"")

let test_diagram_of_universe () =
  let dg = Iso_diagram.of_universe ufull in
  check tint "universe diagram vertices" (Universe.size ufull)
    (List.length (Iso_diagram.vertices dg));
  Alcotest.check_raises "too large"
    (Invalid_argument "Iso_diagram.of_universe: universe too large") (fun () ->
      ignore (Iso_diagram.of_universe ~max_size:1 ufull))

let test_diagram_duplicate_names () =
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Iso_diagram.of_computations: duplicate names") (fun () ->
      ignore (Iso_diagram.of_computations ~all:d [ ("x", fx); ("x", fy) ]))

let suite =
  [
    ("iso basics", `Quick, test_iso_basics);
    ("[D] is permutation", `Quick, test_permutation_of_iso_d);
    ("universe related", `Quick, test_universe_related);
    ("largest label", `Quick, test_largest_label);
    ("composed: example 1", `Quick, test_composed_example1);
    ("reachable identity", `Quick, test_reachable_identity);
    ("related_traces", `Quick, test_related_traces);
    ("law 1: equivalence", `Quick, test_law_equivalence);
    ("law 3: idempotence", `Quick, test_law_idempotence);
    ("law 4: reflexivity", `Quick, test_law_reflexivity);
    ("law 5: inversion", `Quick, test_law_inversion);
    ("law 6: concatenation", `Quick, test_law_concatenation);
    ("law 7: union/inter", `Quick, test_law_union_inter);
    ("law 8: monotonicity", `Quick, test_law_monotonicity);
    ("law 8: strictness witness", `Quick, test_law8_strictness);
    ("law 10: subsumption", `Quick, test_law_subsumption);
    ("figure 3-1 labels", `Quick, test_figure_3_1);
    ("figure 3-1 edges", `Quick, test_diagram_edges);
    ("diagram dot export", `Quick, test_diagram_dot);
    ("diagram of universe", `Quick, test_diagram_of_universe);
    ("diagram duplicate names", `Quick, test_diagram_duplicate_names);
  ]

(* -- laws 2 and 9, completing the set of ten ---------------------------- *)

let test_law2_substitution () =
  random_instances ufull 100 (fun i j ps qs ->
      (* β = δ trivially satisfies the premise; the law must then hold *)
      check tbool "substitution" true
        (Isomorphism.Laws.substitution ufull [ ps ] qs qs [ ps ] i j));
  (* and with genuinely different-but-equal relations when available *)
  random_instances ufull 100 (fun i j ps qs ->
      check tbool "substitution general" true
        (Isomorphism.Laws.substitution ufull [ ps ] qs (Pset.union qs Pset.empty) [] i j))

let test_law9_extensionality () =
  (* on the indep universe every process acts, so [P]=[Q] iff P=Q *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          check tbool "extensionality" true
            (Isomorphism.Laws.extensionality ufull p q))
        [ Pset.empty; sp; sq; d ])
    [ Pset.empty; sp; sq; d ]

let test_law9_needs_eventful_processes () =
  (* §2's clause matters: give p1 no events and [∅] = [{p1}], so
     extensionality fails for ∅ vs {p1} *)
  let lazy_spec =
    Spec.make ~n:2 (fun p h ->
        if Pid.to_int p = 0 && h = [] then [ Spec.Do "a" ] else [])
  in
  let u = Universe.enumerate ~mode:`Full lazy_spec ~depth:3 in
  check tbool "same relation though different sets" true
    (Isomorphism.Laws.same_relation u Pset.empty (Pset.singleton q));
  check tbool "extensionality fails" false
    (Isomorphism.Laws.extensionality u Pset.empty (Pset.singleton q))

let suite =
  suite
  @ [
      ("law 2: substitution", `Quick, test_law2_substitution);
      ("law 9: extensionality", `Quick, test_law9_extensionality);
      ("law 9 needs §2 clause", `Quick, test_law9_needs_eventful_processes);
    ]
