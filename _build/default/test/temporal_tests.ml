(* CTL over computation universes. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let u = Universe.enumerate ~mode:`Full Fixtures.ping_pong ~depth:4

let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)
let a_sent = Temporal.atom sent

let received =
  Temporal.atom
    (Prop.make "received" (fun z -> List.exists Event.is_receive (Trace.proj z p1)))

let test_boolean_layer () =
  check tbool "tt valid" true (Temporal.valid u Temporal.tt);
  check tbool "ff nowhere" true
    (Bitset.is_empty (Temporal.check u Temporal.ff));
  check tbool "not ff = tt" true (Temporal.valid u (Temporal.not_ Temporal.ff));
  check tbool "and" true
    (Temporal.valid u (Temporal.or_ a_sent (Temporal.not_ a_sent)))

let test_ef_initial () =
  (* from the start, the send is eventually possible *)
  check tbool "EF sent" true (Temporal.holds_initially u (Temporal.ef a_sent));
  check tbool "EF received" true (Temporal.holds_initially u (Temporal.ef received));
  (* but not yet true *)
  check tbool "¬sent initially" false (Temporal.holds_initially u a_sent)

let test_af_initial () =
  (* ping-pong has a single maximal behaviour: the send is inevitable *)
  check tbool "AF sent" true (Temporal.holds_initially u (Temporal.af a_sent));
  check tbool "AF received" true (Temporal.holds_initially u (Temporal.af received))

let test_ag_stability () =
  (* 'sent' is stable: once true, always true — AG(sent ⇒ AG sent) *)
  check tbool "sent stable" true
    (Temporal.valid u
       (Temporal.implies a_sent (Temporal.ag a_sent)));
  (* knowledge of a stable local fact is stable here too *)
  let k1 = Temporal.atom (Knowledge.knows_p u p1 sent) in
  check tbool "p1 knowledge stable" true
    (Temporal.valid u (Temporal.implies k1 (Temporal.ag k1)))

let test_ex_ax () =
  (* at ε the only extension is the send *)
  check tbool "EX sent at ε" true (Temporal.holds_initially u (Temporal.ex a_sent));
  check tbool "AX sent at ε" true (Temporal.holds_initially u (Temporal.ax a_sent));
  (* at a leaf, AX ff is vacuously true and EX tt false *)
  let leaf =
    Universe.fold
      (fun _ z acc -> if Trace.length z = 4 then Some z else acc)
      u None
  in
  match leaf with
  | None -> Alcotest.fail "expected a depth-4 computation"
  | Some z ->
      check tbool "AX ff at leaf" true (Temporal.holds_at u (Temporal.ax Temporal.ff) z);
      check tbool "EX tt at leaf" false (Temporal.holds_at u (Temporal.ex Temporal.tt) z)

let test_until () =
  (* ¬received holds until sent — along every path *)
  check tbool "A[¬recv U sent]" true
    (Temporal.holds_initially u
       (Temporal.au (Temporal.not_ received) a_sent));
  (* E[tt U received] = EF received *)
  check tbool "EU = EF" true
    (Bitset.equal
       (Temporal.check u (Temporal.eu Temporal.tt received))
       (Temporal.check u (Temporal.ef received)))

let test_eg () =
  (* some path keeps ¬received forever? no: the only maximal run
     delivers — wait, the message may stay in flight only if the run
     stalls, but maximal paths here deliver; EG ¬received must fail at
     computations where delivery is inevitable. At ε the single run
     reaches received, so EG ¬received fails... only if every maximal
     path hits received. After the send, the only enabled event is the
     receive, so yes. *)
  check tbool "EG ¬received fails at ε" false
    (Temporal.holds_initially u (Temporal.eg (Temporal.not_ received)))

let test_token_bus_ag_claim () =
  (* the paper's §4.1 claim as a CTL invariant *)
  let ub = Universe.enumerate ~mode:`Canonical (Hpl_protocols.Token_bus.spec ~n:5) ~depth:8 in
  let r_holds = Temporal.atom (Hpl_protocols.Token_bus.holds (Pid.of_int 2)) in
  let assertion = Temporal.atom (Hpl_protocols.Token_bus.paper_assertion ub) in
  check tbool "AG (r holds ⇒ assertion)" true
    (Temporal.valid ub (Temporal.implies r_holds assertion));
  (* and r can actually get the token: EF r_holds *)
  check tbool "EF r holds" true (Temporal.holds_initially ub (Temporal.ef r_holds))

let test_canonical_dag () =
  (* CTL works on the canonical quotient too (prefix DAG) *)
  let uc = Universe.enumerate ~mode:`Canonical Fixtures.indep ~depth:4 in
  let a_done =
    Temporal.atom (Prop.make "both moved" (fun z -> Trace.length z = 2))
  in
  check tbool "AF both" true (Temporal.holds_initially uc (Temporal.af a_done))

let suite =
  [
    ("boolean layer", `Quick, test_boolean_layer);
    ("EF from start", `Quick, test_ef_initial);
    ("AF inevitability", `Quick, test_af_initial);
    ("AG stability", `Quick, test_ag_stability);
    ("EX/AX and leaves", `Quick, test_ex_ax);
    ("until operators", `Quick, test_until);
    ("EG", `Quick, test_eg);
    ("token bus as AG invariant", `Quick, test_token_bus_ag_claim);
    ("canonical DAG", `Quick, test_canonical_dag);
  ]
