(* Fuzzing the paper's laws over randomly generated systems: the
   handwritten fixtures exercise shapes we thought of; these exercise
   shapes we did not. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool

let universes =
  (* a spread of random systems, enumerated exactly *)
  List.map
    (fun seed ->
      (seed, Universe.enumerate ~mode:`Full (Fixtures.random_spec ~n:2 ~k:2 ~seed) ~depth:4))
    [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let s0 = Pset.singleton p0
let s1 = Pset.singleton p1
let d = Pset.all 2

let predicates =
  [
    Prop.make "p0 sent" (fun z -> Trace.send_count z p0 > 0);
    Prop.make "p1 moved" (fun z -> Trace.local_length z p1 > 0);
    Prop.make "something in flight" (fun z -> Trace.in_flight z <> []);
  ]

let psets = [ s0; s1; d ]

let test_knowledge_facts_random () =
  List.iter
    (fun (seed, u) ->
      let tag = Printf.sprintf "seed %d" seed in
      List.iter
        (fun ps ->
          List.iter
            (fun b ->
              check tbool (tag ^ " fact4") true (Knowledge.Laws.fact4_veridical u ps b);
              check tbool (tag ^ " fact10") true
                (Knowledge.Laws.fact10_positive_introspection u ps b);
              check tbool (tag ^ " fact11") true
                (Knowledge.Laws.fact11_negative_introspection u ps b);
              check tbool (tag ^ " fact8") true
                (Knowledge.Laws.fact8_consistency u ps b))
            predicates)
        psets)
    universes

let test_lemma3_random () =
  List.iter
    (fun (seed, u) ->
      List.iter
        (fun b ->
          check tbool (Printf.sprintf "seed %d lemma3" seed) true
            (Local_pred.lemma3_constant u s0 s1 b))
        predicates)
    universes

let test_ck_constant_random () =
  List.iter
    (fun (seed, u) ->
      List.iter
        (fun b ->
          check tbool (Printf.sprintf "seed %d CK" seed) true
            (Common_knowledge.constancy_holds u b))
        predicates)
    universes

let test_theorem1_random () =
  List.iter
    (fun (seed, u) ->
      let tag = Printf.sprintf "seed %d t1" seed in
      Universe.iter
        (fun zi z ->
          List.iter
            (fun xi ->
              let x = Universe.comp u xi in
              if Trace.is_prefix x z then
                List.iter
                  (fun psets ->
                    check tbool tag true (Theorem1.dichotomy_holds u ~x ~z psets))
                  [ [ s0 ]; [ s1 ]; [ s0; s1 ] ])
            (Universe.prefixes_of u zi))
        u)
    universes

let test_transfer_random () =
  (* theorems 5/6 sampled over all pairs in each random universe *)
  List.iter
    (fun (seed, u) ->
      let tag = Printf.sprintf "seed %d transfer" seed in
      let b = List.hd predicates in
      Universe.iter
        (fun _ x ->
          Universe.iter
            (fun _ y ->
              check tbool tag true (Transfer.theorem5_gain u [ s1 ] b ~x ~y);
              check tbool tag true (Transfer.theorem6_loss u [ s1 ] b ~x ~y))
            u)
        u)
    universes

let test_theorem1_three_process () =
  (* the dichotomy on 3-process random systems too *)
  let p2 = Pset.singleton (Pid.of_int 2) in
  List.iter
    (fun seed ->
      let u =
        Universe.enumerate ~mode:`Full (Fixtures.random_spec ~n:3 ~k:1 ~seed) ~depth:3
      in
      Universe.iter
        (fun zi z ->
          List.iter
            (fun xi ->
              let x = Universe.comp u xi in
              if Trace.is_prefix x z then
                List.iter
                  (fun psets ->
                    check tbool "3-proc dichotomy" true
                      (Theorem1.dichotomy_holds u ~x ~z psets))
                  [ [ s0; p2 ]; [ p2; s1; s0 ] ])
            (Universe.prefixes_of u zi))
        u)
    [ 2; 7; 11 ]

let test_canonical_quotient_random () =
  (* canonical and full universes agree up to [D]-classes *)
  List.iter
    (fun seed ->
      let spec = Fixtures.random_spec ~n:2 ~k:2 ~seed in
      let ufull = Universe.enumerate ~mode:`Full spec ~depth:4 in
      let ucan = Universe.enumerate ~mode:`Canonical spec ~depth:4 in
      Universe.iter
        (fun _ z ->
          check tbool "class present" true (Universe.find ucan z <> None))
        ufull;
      check tbool "canonical no larger" true
        (Universe.size ucan <= Universe.size ufull))
    [ 1; 2; 3; 5; 8 ]

let test_state_iso_s5_random () =
  List.iter
    (fun (seed, u) ->
      let t = State_iso.make u State_iso.counters in
      List.iter
        (fun b ->
          check tbool (Printf.sprintf "seed %d s5" seed) true
            (State_iso.Laws.s5_negative_introspection t d b))
        predicates)
    universes

let suite =
  [
    ("knowledge facts", `Quick, test_knowledge_facts_random);
    ("lemma 3", `Quick, test_lemma3_random);
    ("CK constancy", `Quick, test_ck_constant_random);
    ("theorem 1 dichotomy", `Slow, test_theorem1_random);
    ("theorems 5/6", `Slow, test_transfer_random);
    ("theorem 1, 3 processes", `Slow, test_theorem1_three_process);
    ("canonical quotient", `Quick, test_canonical_quotient_random);
    ("state-iso S5", `Quick, test_state_iso_s5_random);
  ]
