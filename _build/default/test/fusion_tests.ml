(* Fusion of computations (§3.3) and the extension principle (§3.4). *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool

let p0 = Fixtures.p0
let p1 = Fixtures.p1
let sp = Pset.singleton p0
let sq = Pset.singleton p1
let d = Pset.all 2

let ea = Event.internal ~pid:p0 ~lseq:0 "a"
let eb = Event.internal ~pid:p1 ~lseq:0 "b"

let ok = function Ok v -> v | Error e -> Alcotest.fail e

let test_lemma1_basic () =
  (* x = ε; y adds p0's event; z adds p1's event. x [q] y? no wait:
     x [P] y needs y to add nothing on P. Take P = {p1}, Q = {p0}:
     y = [a] adds only p0-events so x [P] y with P = {p1}. *)
  let x = Trace.empty in
  let y = Trace.of_list [ ea ] in
  let z = Trace.of_list [ eb ] in
  let w = ok (Fusion.lemma1 ~all:d ~x ~y ~z ~p:sq ~q:sp) in
  check tbool "w = a;b" true (Trace.equal w (Trace.of_list [ ea; eb ]));
  check tbool "verify" true (Fusion.verify_lemma1 ~all:d ~x ~y ~z ~p:sq ~q:sp ~w)

let test_lemma1_rejects_bad_iso () =
  let x = Trace.empty in
  let y = Trace.of_list [ ea ] in
  let z = Trace.of_list [ eb ] in
  (* wrong labelling: x [p0] y is false since y adds a p0 event *)
  check tbool "rejected" true
    (match Fusion.lemma1 ~all:d ~x ~y ~z ~p:sp ~q:sq with
    | Error _ -> true
    | Ok _ -> false)

let test_lemma1_rejects_cover () =
  let x = Trace.empty in
  let y = Trace.of_list [ ea ] in
  check tbool "P∪Q≠D rejected" true
    (match Fusion.lemma1 ~all:d ~x ~y ~z:x ~p:sq ~q:sq with
    | Error _ -> true
    | Ok _ -> false)

(* fusing with messages: p0 sends to p1 in y; p1 idles in z *)
let m01 = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m"

let test_theorem2_basic () =
  let x = Trace.empty in
  (* y: p0 sends (no p1 activity); z: p1 ticks (no p0 activity) *)
  let y = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 m01 ] in
  let z = Trace.of_list [ Event.internal ~pid:p1 ~lseq:0 "t" ] in
  let w = ok (Fusion.theorem2 ~all:d ~n:2 ~x ~y ~z ~p:sp) in
  check tbool "verified" true (Fusion.verify_theorem2 ~all:d ~x ~y ~z ~p:sp ~w);
  check tbool "has both events" true (Trace.length w = 2)

let test_theorem2_chain_blocks () =
  (* y includes p1 receiving p0's message: chain <P P̄> would sit in
     (x,y) when fusing with P̄ = {p1} kept from y — use the reversed
     roles to trigger the precondition failure. *)
  let x = Trace.empty in
  let y =
    Trace.of_list
      [ Event.send ~pid:p0 ~lseq:0 m01; Event.receive ~pid:p1 ~lseq:0 m01 ]
  in
  let z = Trace.of_list [ Event.internal ~pid:p1 ~lseq:0 "t" ] in
  (* P = {p1}: keep p1's events from y — but p1's receive depends on
     p0's send, i.e. a chain <P̄ P> in (x,y): must be rejected *)
  check tbool "rejected" true
    (match Fusion.theorem2 ~all:d ~n:2 ~x ~y ~z ~p:sq with
    | Error _ -> true
    | Ok _ -> false)

let test_theorem2_allows_send_side () =
  (* P = {p0}: keep p0's send from y; p1's tick from z: the receive is
     dropped, the chain <P̄ P> in (x,y) is absent (information flowed
     P → P̄, not the reverse) *)
  let x = Trace.empty in
  let y =
    Trace.of_list
      [ Event.send ~pid:p0 ~lseq:0 m01; Event.receive ~pid:p1 ~lseq:0 m01 ]
  in
  let z = Trace.of_list [ Event.internal ~pid:p1 ~lseq:0 "t" ] in
  let w = ok (Fusion.theorem2 ~all:d ~n:2 ~x ~y ~z ~p:sp) in
  check tbool "verified" true (Fusion.verify_theorem2 ~all:d ~x ~y ~z ~p:sp ~w);
  (* w has p0's send and p1's tick, not the receive *)
  check tbool "receive dropped" true
    (List.for_all (fun e -> not (Event.is_receive e)) (Trace.to_list w))

let test_theorem2_nonempty_prefix () =
  (* common prefix x containing a full exchange, then independent
     suffixes *)
  let x =
    Trace.of_list
      [ Event.send ~pid:p0 ~lseq:0 m01; Event.receive ~pid:p1 ~lseq:0 m01 ]
  in
  let y = Trace.snoc x (Event.internal ~pid:p0 ~lseq:1 "y-only") in
  let z = Trace.snoc x (Event.internal ~pid:p1 ~lseq:1 "z-only") in
  let w = ok (Fusion.theorem2 ~all:d ~n:2 ~x ~y ~z ~p:sp) in
  check tbool "verified" true (Fusion.verify_theorem2 ~all:d ~x ~y ~z ~p:sp ~w);
  check tbool "x prefix of w" true (Trace.is_prefix x w);
  check tbool "length 4" true (Trace.length w = 4)

let test_fuse_many_three_parts () =
  let spec = Fixtures.ticks ~n:3 ~k:2 in
  let x = Trace.empty in
  let part i =
    let pid = Pid.of_int i in
    ( Pset.singleton pid,
      Trace.of_list
        [ Event.internal ~pid ~lseq:0 "tick"; Event.internal ~pid ~lseq:1 "tick" ] )
  in
  let w = ok (Fusion.fuse_many ~all:(Pset.all 3) ~n:3 ~x [ part 0; part 1; part 2 ]) in
  check tbool "valid computation" true (Spec.valid spec w);
  check tbool "six events" true (Trace.length w = 6)

let test_fuse_many_rejects_overlap () =
  let x = Trace.empty in
  check tbool "overlap rejected" true
    (match
       Fusion.fuse_many ~all:d ~n:2 ~x
         [ (d, Trace.of_list [ ea ]); (sq, Trace.of_list [ eb ]) ]
     with
    | Error _ -> true
    | Ok _ -> false)

let test_fuse_many_rejects_non_cover () =
  let x = Trace.empty in
  check tbool "non-cover rejected" true
    (match Fusion.fuse_many ~all:d ~n:2 ~x [ (sp, Trace.of_list [ ea ]) ] with
    | Error _ -> true
    | Ok _ -> false)

(* -- computation extension principle --------------------------------- *)

let spec_pp = Fixtures.ping_pong
let upp = Universe.enumerate ~mode:`Full spec_pp ~depth:4

let test_extend () =
  let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping" in
  let e = Event.send ~pid:p0 ~lseq:0 ping in
  check tbool "enabled extend" true (Extension.extend spec_pp Trace.empty e <> None);
  let bogus = Event.internal ~pid:p0 ~lseq:0 "nope" in
  check tbool "disabled extend" true (Extension.extend spec_pp Trace.empty bogus = None)

let all_instances u f =
  (* drive the checkers over all (x, y, e) with e enabled after x *)
  Universe.iter
    (fun _ x ->
      Universe.iter
        (fun _ y ->
          List.iter (fun e -> f ~x ~y ~e) (Spec.enabled (Universe.spec u) x))
        u)
    u

let test_principle_forward_exhaustive () =
  all_instances upp (fun ~x ~y ~e ->
      List.iter
        (fun p ->
          check tbool "forward" true
            (Extension.check_principle_forward spec_pp ~x ~y ~e
               ~p:(Pset.singleton p)))
        (Spec.pids spec_pp))

let test_principle_backward_exhaustive () =
  all_instances upp (fun ~x ~y ~e ->
      List.iter
        (fun p ->
          check tbool "backward" true
            (Extension.check_principle_backward spec_pp ~x ~y ~e
               ~p:(Pset.singleton p)))
        (Spec.pids spec_pp))

let test_corollary_receive_exhaustive () =
  all_instances upp (fun ~x ~y ~e ->
      check tbool "corollary" true
        (Extension.check_corollary_receive spec_pp ~x ~y ~e))

let test_theorem3_exhaustive () =
  (* e within depth margin so (x;e)'s iso-set is complete *)
  Universe.iter
    (fun _ x ->
      if Trace.length x < Universe.depth upp - 1 then
        List.iter
          (fun e ->
            let p = Pset.singleton e.Event.pid in
            check tbool "theorem3" true (Extension.check_theorem3 upp ~p ~x ~e))
          (Spec.enabled spec_pp x))
    upp

let test_theorem3_strict_shrink () =
  (* p1's receive of ping strictly shrinks its iso-set: before the
     receive, computations without the send are possible; after, they
     are not *)
  let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping" in
  let x = Trace.of_list [ Event.send ~pid:p0 ~lseq:0 ping ] in
  let e = Event.receive ~pid:p1 ~lseq:0 ping in
  let before = Extension.iso_set upp (Pset.singleton p1) x in
  let after = Extension.iso_set upp (Pset.singleton p1) (Trace.snoc x e) in
  check tbool "strictly smaller" true
    (Bitset.cardinal after < Bitset.cardinal before)

let test_theorem3_send_grows_or_preserves () =
  let ping = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"ping" in
  let e = Event.send ~pid:p0 ~lseq:0 ping in
  let before = Extension.iso_set upp (Pset.singleton p0) Trace.empty in
  let after = Extension.iso_set upp (Pset.singleton p0) (Trace.of_list [ e ]) in
  check tbool "grows or preserves" true
    (Bitset.cardinal after >= Bitset.cardinal before)

let suite =
  [
    ("lemma1 basic", `Quick, test_lemma1_basic);
    ("lemma1 bad iso", `Quick, test_lemma1_rejects_bad_iso);
    ("lemma1 bad cover", `Quick, test_lemma1_rejects_cover);
    ("theorem2 basic", `Quick, test_theorem2_basic);
    ("theorem2 chain blocks", `Quick, test_theorem2_chain_blocks);
    ("theorem2 send side ok", `Quick, test_theorem2_allows_send_side);
    ("theorem2 nonempty prefix", `Quick, test_theorem2_nonempty_prefix);
    ("fuse_many three parts", `Quick, test_fuse_many_three_parts);
    ("fuse_many overlap", `Quick, test_fuse_many_rejects_overlap);
    ("fuse_many non-cover", `Quick, test_fuse_many_rejects_non_cover);
    ("extend", `Quick, test_extend);
    ("principle forward", `Quick, test_principle_forward_exhaustive);
    ("principle backward", `Quick, test_principle_backward_exhaustive);
    ("corollary receive", `Quick, test_corollary_receive_exhaustive);
    ("theorem3 exhaustive", `Quick, test_theorem3_exhaustive);
    ("theorem3 strict shrink", `Quick, test_theorem3_strict_shrink);
    ("theorem3 send grows", `Quick, test_theorem3_send_grows_or_preserves);
  ]
