(* The epistemic-temporal formula language. *)
open Hpl_core

let check = Alcotest.check
let tbool = Alcotest.bool

let p0 = Fixtures.p0
let p1 = Fixtures.p1

let u = Universe.enumerate ~mode:`Full Fixtures.ping_pong ~depth:4
let sent = Prop.make "sent" (fun z -> Trace.send_count z p0 > 0)

let received =
  Prop.make "received" (fun z -> List.exists Event.is_receive (Trace.proj z p1))

let env = function
  | "sent" -> Some sent
  | "received" -> Some received
  | _ -> None

let parse_ok s =
  match Formula.parse s with
  | Ok f -> f
  | Error e -> Alcotest.failf "parse %S: %s" s e

let eval_ok s =
  match Formula.eval u ~env (parse_ok s) with
  | Ok p -> p
  | Error e -> Alcotest.failf "eval %S: %s" s e

(* -- parsing ------------------------------------------------------------ *)

let test_parse_basics () =
  List.iter
    (fun s -> ignore (parse_ok s))
    [
      "true";
      "~false";
      "sent & received";
      "sent | received -> sent";
      "K p1 sent";
      "K 1 sent";
      "K {0,1} sent";
      "E {0,1} sent";
      "S p0 (sent & received)";
      "CK sent";
      "AG (sent -> K p1 sent)";
      "EF (K p0 (K p1 sent))";
      "sure p1 sent";
      "~K p1 ~sent";
    ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Formula.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "K sent"; "(sent"; "sent &"; "K {0,} sent"; "sent extra"; "@" ]

let test_precedence () =
  (* -> binds loosest and associates right; & over | *)
  check tbool "a & b | c parses as (a&b)|c" true
    (Formula.parse "sent & received | true"
    = Ok (Formula.Or (Formula.And (Formula.Atom "sent", Formula.Atom "received"), Formula.True)));
  check tbool "a -> b -> c right-assoc" true
    (Formula.parse "true -> false -> true"
    = Ok (Formula.Implies (Formula.True, Formula.Implies (Formula.False, Formula.True))))

let test_roundtrip_fixed () =
  List.iter
    (fun s ->
      let f = parse_ok s in
      match Formula.parse (Formula.print f) with
      | Ok f' -> check tbool ("roundtrip " ^ s) true (f = f')
      | Error e -> Alcotest.failf "reparse failed: %s" e)
    [
      "AG (holds2 -> K p2 (K p1 (~holds0) & K p3 (~holds4)))";
      "CK (sent | ~received)";
      "E {0,1} (S {1} sent)";
      "sure {0,1} (sent -> received)";
    ]

let qcheck_roundtrip =
  let open QCheck in
  let rec gen_formula depth =
    let open Gen in
    if depth = 0 then
      oneof
        [
          return Formula.True;
          return Formula.False;
          oneofl [ Formula.Atom "sent"; Formula.Atom "received" ];
        ]
    else
      let sub = gen_formula (depth - 1) in
      let ps = oneofl [ [ 0 ]; [ 1 ]; [ 0; 1 ] ] in
      oneof
        [
          map (fun f -> Formula.Not f) sub;
          map2 (fun a b -> Formula.And (a, b)) sub sub;
          map2 (fun a b -> Formula.Or (a, b)) sub sub;
          map2 (fun a b -> Formula.Implies (a, b)) sub sub;
          map2 (fun p f -> Formula.Know (p, f)) ps sub;
          map2 (fun p f -> Formula.Everyone (p, f)) ps sub;
          map2 (fun p f -> Formula.Someone (p, f)) ps sub;
          map (fun f -> Formula.Common f) sub;
          map (fun f -> Formula.Ag f) sub;
          map (fun f -> Formula.Ef f) sub;
          map (fun f -> Formula.Ax f) sub;
        ]
  in
  Test.make ~name:"formula print/parse roundtrip" ~count:300
    (make ~print:Formula.print (gen_formula 3))
    (fun f -> Formula.parse (Formula.print f) = Ok f)

(* -- evaluation ----------------------------------------------------------- *)

let test_eval_matches_api () =
  let pairs =
    [
      ("K p1 sent", Knowledge.knows_p u p1 sent);
      ("K p0 (K p1 sent)", Knowledge.knows_p u p0 (Knowledge.knows_p u p1 sent));
      ("sure p1 sent", Knowledge.sure u (Pset.singleton p1) sent);
      ("CK sent", Common_knowledge.common u sent);
      ("E {0,1} sent", Group.everyone u (Pset.all 2) sent);
      ("S {0,1} sent", Group.someone u (Pset.all 2) sent);
    ]
  in
  List.iter
    (fun (s, direct) ->
      let p = eval_ok s in
      Universe.iter
        (fun _ z ->
          check tbool ("agrees: " ^ s) (Prop.eval direct z) (Prop.eval p z))
        u)
    pairs

let test_eval_temporal () =
  let p = eval_ok "AG (sent -> AG sent)" in
  Universe.iter (fun _ z -> check tbool "stability valid" true (Prop.eval p z)) u;
  let q = eval_ok "EF received" in
  check tbool "EF received at start" true (Prop.eval q Trace.empty)

let test_eval_errors () =
  check tbool "unbound atom" true
    (match Formula.eval u ~env (parse_ok "K p1 nonsense") with
    | Error e -> String.length e > 0
    | Ok _ -> false);
  check tbool "pid out of range" true
    (match Formula.eval u ~env (parse_ok "K p7 sent") with
    | Error _ -> true
    | Ok _ -> false)

let test_check_valid_and_witness () =
  (match Formula.check u ~env (parse_ok "sent -> S {0,1} sent") with
  | Ok `Valid -> ()
  | Ok (`Fails_at z) -> Alcotest.failf "unexpected failure at %s" (Trace.to_string z)
  | Error e -> Alcotest.fail e);
  match Formula.check u ~env (parse_ok "K p1 sent") with
  | Ok (`Fails_at z) ->
      check tbool "witness is a computation where p1 ignorant" false
        (Prop.eval (Knowledge.knows_p u p1 sent) z)
  | Ok `Valid -> Alcotest.fail "should not be valid"
  | Error e -> Alcotest.fail e

let test_token_bus_formula () =
  (* the §4.1 assertion in concrete syntax, checked as an AG invariant *)
  let ub = Universe.enumerate ~mode:`Canonical (Hpl_protocols.Token_bus.spec ~n:5) ~depth:8 in
  let envb = function
    | "holds0" -> Some (Hpl_protocols.Token_bus.holds (Pid.of_int 0))
    | "holds2" -> Some (Hpl_protocols.Token_bus.holds (Pid.of_int 2))
    | "holds4" -> Some (Hpl_protocols.Token_bus.holds (Pid.of_int 4))
    | _ -> None
  in
  let f = parse_ok "AG (holds2 -> K p2 (K p1 (~holds0) & K p3 (~holds4)))" in
  match Formula.check ub ~env:envb f with
  | Ok `Valid -> ()
  | Ok (`Fails_at z) -> Alcotest.failf "fails at %s" (Trace.to_string z)
  | Error e -> Alcotest.fail e

let test_atoms () =
  check Alcotest.(list string) "atoms in order" [ "sent"; "received" ]
    (Formula.atoms (parse_ok "K p1 sent & (received | sent)"))

let suite =
  [
    ("parse basics", `Quick, test_parse_basics);
    ("parse errors", `Quick, test_parse_errors);
    ("precedence", `Quick, test_precedence);
    ("roundtrip fixed", `Quick, test_roundtrip_fixed);
    QCheck_alcotest.to_alcotest ~verbose:false qcheck_roundtrip;
    ("eval matches API", `Quick, test_eval_matches_api);
    ("eval temporal", `Quick, test_eval_temporal);
    ("eval errors", `Quick, test_eval_errors);
    ("check valid/witness", `Quick, test_check_valid_and_witness);
    ("token bus formula", `Quick, test_token_bus_formula);
    ("atoms", `Quick, test_atoms);
  ]
