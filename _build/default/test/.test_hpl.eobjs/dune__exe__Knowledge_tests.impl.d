test/knowledge_tests.ml: Alcotest Bitset Common_knowledge Event Fixtures Hpl_core Knowledge List Local_pred Msg Prop Pset Trace Universe
