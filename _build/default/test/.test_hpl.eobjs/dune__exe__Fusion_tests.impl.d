test/fusion_tests.ml: Alcotest Bitset Event Extension Fixtures Fusion Hpl_core List Msg Pid Pset Spec Trace Universe
