test/io_tests.ml: Alcotest Engine Event Filename Fixtures Fun Hpl_core Hpl_protocols Hpl_sim List Msg Pid QCheck QCheck_alcotest Spec String Sys Trace Trace_io
