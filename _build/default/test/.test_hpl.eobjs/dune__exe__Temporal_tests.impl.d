test/temporal_tests.ml: Alcotest Bitset Event Fixtures Hpl_core Hpl_protocols Knowledge List Pid Prop Temporal Trace Universe
