test/sim_tests.ml: Alcotest Array Engine Event Hpl_clocks Hpl_core Hpl_sim List Pid Pqueue Rng Trace
