test/kprogram_tests.ml: Alcotest Event Fixtures Hpl_core Knowledge Kprogram List Pid Prop Pset Spec Trace Universe
