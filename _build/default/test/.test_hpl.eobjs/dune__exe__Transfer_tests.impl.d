test/transfer_tests.ml: Alcotest Event Fixtures Hpl_core Knowledge List Msg Prop Pset Spec Trace Transfer Universe
