test/replay_tests.ml: Alcotest Cut Detect Event Fixtures Hpl_core Hpl_protocols Hpl_sim Knowledge List Msg Printf Prop Pset QCheck QCheck_alcotest Replay Spec Trace Transfer Underlying Universe
