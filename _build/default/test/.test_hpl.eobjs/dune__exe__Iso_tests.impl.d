test/iso_tests.ml: Alcotest Bitset Event Fixtures Fmt Format Hpl_core Iso_diagram Isomorphism List Option Pid Pset Random Relations Spec String Trace Universe
