test/test_hpl.mli:
