test/bitset_tests.ml: Alcotest Bitset Hpl_core List Printf QCheck QCheck_alcotest String
