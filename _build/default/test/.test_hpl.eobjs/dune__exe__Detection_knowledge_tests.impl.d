test/detection_knowledge_tests.ml: Alcotest Event Explain Hpl_core Knowledge Lazy List Msg Pid Prop Pset Spec String Trace Transfer Universe
