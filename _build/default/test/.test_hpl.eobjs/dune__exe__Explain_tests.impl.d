test/explain_tests.ml: Alcotest Bitset Event Explain Fixtures Format Hpl_core List Msg Pid Prop Pset String Temporal Trace Universe
