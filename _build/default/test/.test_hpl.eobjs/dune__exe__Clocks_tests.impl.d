test/clocks_tests.ml: Alcotest Array Causal_order Causality Dependency Event Fixtures Hpl_clocks Hpl_core Knowledge Lamport List Matrix Msg Pid Printf Prop Pset Spec Trace Universe Vector
