test/prop_tests.ml: Alcotest Bitset Event Fixtures Hpl_core Pid Prop String Trace Universe
