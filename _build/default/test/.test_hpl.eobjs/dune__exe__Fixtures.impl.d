test/fixtures.ml: Event Hashtbl Hpl_core List Msg Pid Printf Spec String Trace
