test/protocol3_tests.ml: Alcotest Causal_broadcast Cut Detect Event Fixtures Hpl_core Hpl_protocols Hpl_sim Lamport_mutex List Msg Printf Spec Trace
