test/property_tests.ml: Causality Chain Cut Event Fixtures Fusion Hpl_clocks Hpl_core Hpl_protocols Isomorphism List Pid Printf Pset QCheck QCheck_alcotest Spec Trace Universe
