test/protocol4_tests.ml: Alcotest Bully Causality Hpl_clocks Hpl_core Hpl_protocols Hpl_sim Lamport_mutex List Printf Ricart_agrawala Snapshot_term Termination Underlying
