test/extension_module_tests.ml: Alcotest Bitset Causality Chain Common_knowledge Cut Event Fixtures Group Hpl_core Knowledge List Msg Prop Pset Spec State_iso Trace Universe
