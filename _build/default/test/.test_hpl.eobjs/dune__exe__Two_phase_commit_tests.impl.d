test/two_phase_commit_tests.ml: Alcotest Array Hpl_core Hpl_protocols List Msg Pid Prop Pset String Trace Transfer Two_phase_commit Universe Wire
