test/algebra_tests.ml: Alcotest Array Fixtures Hashtbl Hpl_core Hpl_protocols Hpl_sim Knowledge List Msg Option Pid Prop Pset Spec Spec_algebra String Total_order Trace Universe
