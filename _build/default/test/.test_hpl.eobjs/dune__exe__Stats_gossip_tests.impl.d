test/stats_gossip_tests.ml: Alcotest Array Causality Chain Event Fixtures Format Gossip Hpl_core Hpl_protocols List Msg Pid Pset String Trace Trace_stats Two_generals Universe
