test/paxos_tests.ml: Alcotest Hpl_protocols Hpl_sim List Paxos
