test/random_system_tests.ml: Alcotest Common_knowledge Fixtures Hpl_core Knowledge List Local_pred Pid Printf Prop Pset State_iso Theorem1 Trace Transfer Universe
