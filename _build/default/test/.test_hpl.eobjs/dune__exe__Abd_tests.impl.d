test/abd_tests.ml: Abd_register Alcotest Hpl_core Hpl_protocols Hpl_sim List Trace
