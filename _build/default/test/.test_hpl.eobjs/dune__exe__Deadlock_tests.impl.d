test/deadlock_tests.ml: Alcotest Array Chain Deadlock Fun Hpl_core Hpl_protocols List Pid
