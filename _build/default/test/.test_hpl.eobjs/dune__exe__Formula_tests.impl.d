test/formula_tests.ml: Alcotest Common_knowledge Event Fixtures Formula Gen Group Hpl_core Hpl_protocols Knowledge List Pid Prop Pset QCheck QCheck_alcotest String Test Trace Universe
