test/model_tests.ml: Alcotest Event Fixtures Hpl_core List Msg Pid Pset Spec String Trace
