test/causality_tests.ml: Alcotest Causality Chain Event Fixtures Hpl_core List Msg Pid Printf Pset Spec Theorem1 Trace Universe
