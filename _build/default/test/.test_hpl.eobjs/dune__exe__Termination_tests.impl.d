test/termination_tests.ml: Alcotest Credit Dijkstra_scholten Event Hpl_core Hpl_protocols Hpl_sim List Msg Probe Safra Termination Trace Underlying
