test/protocol2_tests.ml: Alcotest Array Causality Chang_roberts Echo Event Hpl_core Hpl_protocols List Msg Pid Printf String Token_ring Trace Wire
