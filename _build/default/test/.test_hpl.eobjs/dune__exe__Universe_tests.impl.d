test/universe_tests.ml: Alcotest Array Bitset Event Fixtures Hpl_core List Pset QCheck QCheck_alcotest Spec Trace Universe
