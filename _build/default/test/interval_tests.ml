(* Interval (nonatomic-operation) causality, and the §5 structural
   lemma about detection traces. *)
open Hpl_core
open Hpl_clocks
open Hpl_protocols

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let p0 = Fixtures.p0
let p1 = Fixtures.p1

(* a trace with two bracketed operations connected by a message:
   p0: [opA-start; send; opA-end]   p1: [recv; opB-start; opB-end] *)
let m = Msg.make ~src:p0 ~dst:p1 ~seq:0 ~payload:"m"

let bracketed =
  Trace.of_list
    [
      Event.internal ~pid:p0 ~lseq:0 "op-start";
      Event.send ~pid:p0 ~lseq:1 m;
      Event.internal ~pid:p0 ~lseq:2 "op-end";
      Event.receive ~pid:p1 ~lseq:0 m;
      Event.internal ~pid:p1 ~lseq:1 "op-start";
      Event.internal ~pid:p1 ~lseq:2 "op-end";
    ]

let ts = Causality.compute ~n:2 bracketed

let test_extraction () =
  let ivs = Interval.of_bracketing ~enter:"op-start" ~exit:"op-end" bracketed in
  check tint "two intervals" 2 (List.length ivs);
  match ivs with
  | [ a; b ] ->
      check tbool "a is p0's" true (Pid.equal a.Interval.owner p0);
      check tint "a spans 0..2" 0 a.Interval.first;
      check tint "a ends at 2" 2 a.Interval.last;
      check tbool "b is p1's" true (Pid.equal b.Interval.owner p1)
  | _ -> Alcotest.fail "expected two"

let test_precedes_and_affect () =
  match Interval.of_bracketing ~enter:"op-start" ~exit:"op-end" bracketed with
  | [ a; b ] ->
      (* A's end (pos 2) does not happen-before B's start (pos 4)?
         p0's op-end is after the send; B starts after the receive:
         op-end (internal on p0) vs op-start on p1: no chain from
         op-end to p1 — only the send (pos 1, inside A) reaches B. *)
      check tbool "¬(A precedes B)" false (Interval.precedes ts a b);
      check tbool "A can affect B" true (Interval.can_affect ts a b);
      check tbool "¬(B can affect A)" false (Interval.can_affect ts b a);
      check tbool "not concurrent" false (Interval.concurrent ts a b)
  | _ -> Alcotest.fail "expected two"

let test_truly_sequential_precedes () =
  (* move A's end before the send: then A precedes B *)
  let z =
    Trace.of_list
      [
        Event.internal ~pid:p0 ~lseq:0 "op-start";
        Event.internal ~pid:p0 ~lseq:1 "op-end";
        Event.send ~pid:p0 ~lseq:2 m;
        Event.receive ~pid:p1 ~lseq:0 m;
        Event.internal ~pid:p1 ~lseq:1 "op-start";
        Event.internal ~pid:p1 ~lseq:2 "op-end";
      ]
  in
  let ts = Causality.compute ~n:2 z in
  match Interval.of_bracketing ~enter:"op-start" ~exit:"op-end" z with
  | [ a; b ] ->
      check tbool "A precedes B" true (Interval.precedes ts a b);
      check tbool "total order" true (Interval.totally_ordered ts [ a; b ])
  | _ -> Alcotest.fail "expected two"

let test_concurrent_intervals () =
  let z =
    Trace.of_list
      [
        Event.internal ~pid:p0 ~lseq:0 "op-start";
        Event.internal ~pid:p1 ~lseq:0 "op-start";
        Event.internal ~pid:p0 ~lseq:1 "op-end";
        Event.internal ~pid:p1 ~lseq:1 "op-end";
      ]
  in
  let ts = Causality.compute ~n:2 z in
  match Interval.of_bracketing ~enter:"op-start" ~exit:"op-end" z with
  | [ a; b ] ->
      check tbool "concurrent" true (Interval.concurrent ts a b);
      check tbool "not totally ordered" false (Interval.totally_ordered ts [ a; b ])
  | _ -> Alcotest.fail "expected two"

let test_unmatched_enter_extends () =
  let z = Trace.of_list [ Event.internal ~pid:p0 ~lseq:0 "op-start";
                          Event.internal ~pid:p1 ~lseq:0 "noise" ] in
  match Interval.of_bracketing ~enter:"op-start" ~exit:"op-end" z with
  | [ a ] -> check tint "runs to end" 1 a.Interval.last
  | _ -> Alcotest.fail "expected one"

(* -- critical sections as intervals -------------------------------------- *)

let test_mutex_cs_intervals_totally_ordered () =
  let o = Lamport_mutex.run Lamport_mutex.default in
  let z = o.Lamport_mutex.trace in
  let n = Lamport_mutex.default.Lamport_mutex.n in
  let ts = Causality.compute ~n z in
  let ivs = Interval.of_bracketing ~enter:"mx-enter" ~exit:"mx-exit" z in
  check tint "one interval per entry" (n * Lamport_mutex.default.Lamport_mutex.rounds)
    (List.length ivs);
  check tbool "CS intervals totally ordered" true (Interval.totally_ordered ts ivs)

let test_token_ring_cs_intervals_totally_ordered () =
  let o = Token_ring.run Token_ring.default in
  let z = o.Token_ring.trace in
  let n = Token_ring.default.Token_ring.n in
  let ts = Causality.compute ~n z in
  let ivs = Interval.of_bracketing ~enter:Token_ring.enter_tag ~exit:Token_ring.exit_tag z in
  check tbool "some sections" true (List.length ivs > 3);
  check tbool "totally ordered" true (Interval.totally_ordered ts ivs)

(* -- the §5 structural lemma --------------------------------------------- *)

(* "in order for termination to be detected, an overhead message is
   sent by some process, without its first receiving a message, after
   the underlying computation terminates." Verify on sound detectors'
   runs: between true termination and the announcement there is an
   overhead send whose sender received nothing in the window before
   sending it. *)
let spontaneous_overhead_send_exists z =
  match Underlying.termination_position z with
  | None -> true (* not terminated: lemma's premise absent *)
  | Some tpos ->
      let events = Array.of_list (Trace.to_list z) in
      (* find announcement *)
      let detect_pos = ref None in
      Array.iteri
        (fun i e ->
          match e.Event.kind with
          | Event.Internal tag
            when !detect_pos = None
                 && String.length tag > 9
                 && String.sub tag (String.length tag - 9) 9 = ":detected" ->
              detect_pos := Some i
          | _ -> ())
        events;
      (match !detect_pos with
      | None -> true
      | Some dpos ->
          (* some overhead send in (tpos, dpos) by a process with no
             receive in (tpos, send-position) *)
          let received_before = Hashtbl.create 8 in
          let found = ref false in
          for i = tpos to dpos do
            let e = events.(i) in
            match e.Event.kind with
            | Event.Receive _ ->
                Hashtbl.replace received_before (Pid.to_int e.Event.pid) true
            | Event.Send m when not (Underlying.is_work m.Msg.payload) ->
                if not (Hashtbl.mem received_before (Pid.to_int e.Event.pid)) then
                  found := true
            | _ -> ()
          done;
          !found)

(* For Safra the lemma is a worst-case statement, not a per-run one:
   the detecting round may have been launched (spontaneously, by timer)
   just before true termination and then complete cleanly. What is
   per-run true: Safra cannot be purely reactive — some overhead send
   is not a response to any receipt (the round launches). *)
let has_unprompted_overhead_send z =
  let last_was_receive = Hashtbl.create 8 in
  let found = ref false in
  List.iter
    (fun e ->
      let p = Pid.to_int e.Event.pid in
      match e.Event.kind with
      | Event.Receive _ -> Hashtbl.replace last_was_receive p true
      | Event.Send m when not (Underlying.is_work m.Msg.payload) ->
          if not (Option.value ~default:false (Hashtbl.find_opt last_was_receive p))
          then found := true;
          Hashtbl.replace last_was_receive p false
      | Event.Send _ | Event.Internal _ -> Hashtbl.replace last_was_receive p false)
    (Trace.to_list z);
  !found

let test_structural_lemma_on_detectors () =
  List.iter
    (fun seed ->
      let params = { Underlying.default with n = 5; budget = 40; seed } in
      let config = { Hpl_sim.Engine.default with seed } in
      let _, ds = Dijkstra_scholten.run_raw ~config params in
      check tbool "DS: spontaneous overhead send" true
        (spontaneous_overhead_send_exists ds);
      let _, cr = Credit.run_raw ~config params in
      check tbool "credit: spontaneous overhead send" true
        (spontaneous_overhead_send_exists cr);
      let _, sf = Safra.run_raw ~config ~round_delay:2.0 params in
      check tbool "safra: unprompted overhead send somewhere" true
        (has_unprompted_overhead_send sf))
    [ 1L; 2L; 3L ]

let suite =
  [
    ("interval extraction", `Quick, test_extraction);
    ("precedes vs can-affect", `Quick, test_precedes_and_affect);
    ("sequential precedes", `Quick, test_truly_sequential_precedes);
    ("concurrent intervals", `Quick, test_concurrent_intervals);
    ("unmatched enter", `Quick, test_unmatched_enter_extends);
    ("mutex CS total order", `Quick, test_mutex_cs_intervals_totally_ordered);
    ("token ring CS total order", `Quick, test_token_ring_cs_intervals_totally_ordered);
    ("§5 structural lemma", `Quick, test_structural_lemma_on_detectors);
  ]
