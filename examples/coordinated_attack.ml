(* Coordinated attack over an unreliable channel (§4.2, Halpern–Moses).

   General A decides to attack and sends the order to general B over a
   channel that may lose messages; acknowledgements flow back. The
   celebrated impossibility: the generals can climb the ladder
   "B knows", "A knows B knows", ... one level per delivered message,
   but common knowledge of the attack is NEVER attained — indeed, by
   the paper's constancy corollary it is unattainable even over a
   PERFECT channel, because CK can never be gained in an asynchronous
   system. What message loss changes is everything below CK: every
   rung of the ladder becomes uncertain (a silent maximal run where
   the order was sent but B learned nothing), and knowledge that was
   guaranteed becomes merely possible. This demo measures all of it. *)
open Hpl_core
open Hpl_faults
open Hpl_protocols

let a = Pid.of_int 0
let b = Pid.of_int 1
let attack = Two_generals.attack_decided

let has_drop z =
  List.exists
    (fun e ->
      match e.Event.kind with
      | Event.Internal t -> String.length t >= 5 && String.sub t 0 5 = "drop:"
      | _ -> false)
    (Trace.to_list z)

let attainable u prop =
  Universe.fold (fun _ z acc -> acc || Prop.eval prop z) u false

let ladder_row u ~view k =
  (* E^k along the A/B alternation, atoms evaluated through [view] *)
  let base = Prop.make "attack" (fun z -> Prop.eval attack (view z)) in
  let rec build i =
    if i = 0 then base
    else
      let who = if i mod 2 = 1 then b else a in
      Knowledge.knows u (Pset.singleton who) (build (i - 1))
  in
  attainable u (build k)

let () =
  Format.printf "== Coordinated attack: knowledge over a lossy channel ==@.@.";

  (* 1. the fault-free universe *)
  let depth = 7 in
  let u0 = Universe.enumerate Two_generals.spec ~depth in
  Format.printf "fault-free:  %a@." Universe.pp_stats u0;

  (* 2. the same system with a lossy A->B channel (routed through a
     network daemon; drops are daemon events, so neither general can
     tell a lost order from one still in flight) *)
  let scenario = Result.get_ok (Faults.Scenario.parse "drop:p0->p1") in
  let lossy = Faults.Scenario.apply_exn scenario Two_generals.spec in
  let fdepth = Faults.Scenario.suggested_depth scenario depth in
  let budget = Universe.budget ~max_states:200_000 () in
  let u1 = Universe.enumerate ~budget lossy ~depth:fdepth in
  let view = Faults.Scenario.view scenario ~n:2 in
  Format.printf "lossy A->B:  %a@.@." Universe.pp_stats u1;

  (* 3. the knowledge ladder, rung by rung *)
  Format.printf "ladder rung (E^k of \"attack decided\"):   k = 1    2    3@.";
  let row name u view =
    Format.printf "  %-36s" name;
    List.iter
      (fun k ->
        Format.printf "  %s" (if ladder_row u ~view k then "yes" else " no"))
      [ 1; 2; 3 ];
    Format.printf "@."
  in
  row "fault-free: attainable?" u0 Fun.id;
  row "lossy:      attainable?" u1 view;

  (* 4. what loss adds: silent maximal runs. In the lossy universe
     there are computations where A sent the order, the daemon dropped
     it, and B can never learn — A cannot distinguish them from slow
     delivery. *)
  let silent =
    Universe.fold
      (fun _ z acc ->
        acc
        || Trace.send_count z a > 0
           && has_drop z
           && List.filter Event.is_receive (Trace.proj z b) = [])
      u1 false
  in
  Format.printf "@.lossy universe has a silent-drop run (order sent, B ignorant): %b@."
    silent;
  assert silent;

  (* 5. common knowledge: never attained in EITHER universe — the
     constancy corollary says CK cannot be gained, loss or no loss. The
     generals' dilemma is not caused by the lossy channel; the lossy
     channel just extends the impossibility down the ladder. *)
  let ck_free = Common_knowledge.attainable u0 attack in
  let ck_lossy =
    Common_knowledge.attainable u1
      (Prop.make "attack" (fun z -> Prop.eval attack (view z)))
  in
  Format.printf "@.common knowledge of the attack attainable, fault-free: %b@."
    ck_free;
  Format.printf "common knowledge of the attack attainable, lossy:      %b@."
    ck_lossy;
  assert ((not ck_free) && not ck_lossy);

  (* 6. the robustness verdict: under the SAME depth budget, B's
     knowledge of the attack survives message loss (deliveries still
     exist) but becomes strictly rarer — every delivery now costs two
     hops through the daemon, and some runs drop the order outright. *)
  let r =
    Knowledge.robust_under Two_generals.spec
      ~transform:(fun s -> Faults.Scenario.apply_exn scenario s)
      ~depth ~view (Pset.singleton b) attack
  in
  Format.printf "@.robustness of \"B knows the attack was decided\": %a@."
    Knowledge.pp_robustness r;
  assert (r.Knowledge.verdict = Knowledge.Degraded);

  (* 7. graceful degradation: a deliberately oversized scenario — loss
     AND duplication on every channel, full (non-canonical) mode, deep
     bound — under a tight budget returns Truncated instead of hanging *)
  let blown = Faults.Scenario.apply_exn
      (Result.get_ok (Faults.Scenario.parse "drop:*,dup:*"))
      Two_generals.spec
  in
  let u2 =
    Universe.enumerate ~mode:`Full
      ~budget:(Universe.budget ~max_states:2_000 ()) blown ~depth:20
  in
  (match Universe.status u2 with
  | Universe.Truncated reason ->
      Format.printf "@.oversized scenario: stopped early — %s (%d states kept)@."
        (Universe.reason_to_string reason) (Universe.size u2)
  | Universe.Complete -> Format.printf "@.oversized scenario: completed?!@.");
  assert (Universe.status u2 <> Universe.Complete);
  Format.printf "@.All claims verified.@."
