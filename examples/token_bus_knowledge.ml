(* The paper's §4.1 token bus, exactly as described: five processes
   p,q,r,s,t in a line, one token, initially at p.

     dune exec examples/token_bus_knowledge.exe

   Whenever r holds the token:
     r knows ((q knows ¬(p holds)) ∧ (s knows ¬(t holds)))
   We verify this over every computation of the bounded universe, and
   print the isomorphism-diagram DOT of a small slice for inspection. *)
open Hpl_core
open Hpl_protocols

let () =
  List.iteri
    (fun i name -> Pid.set_name (Pid.of_int i) name)
    [ "p"; "q"; "r"; "s"; "t" ];
  (* the system comes from the registry, like any other protocol *)
  Builtins.init ();
  let inst =
    match Protocol.Registry.parse "token-bus:5" with
    | Ok inst -> inst
    | Error e -> failwith e
  in
  let u = Universe.enumerate (Protocol.spec_of inst) ~depth:10 in
  Format.printf "token bus: %a@.@." Universe.pp_stats u;

  (* its registered atoms are the formula-language surface *)
  Format.printf "registered atoms: %s@.@."
    (String.concat " " (List.map fst (Protocol.atoms_of inst)));

  (* the assertion, under its own name *)
  let assertion = Token_bus.paper_assertion u in
  Format.printf "assertion: %a@.@." Prop.pp assertion;

  (* check it wherever r holds *)
  let r = Pid.of_int 2 in
  let r_holds = Token_bus.holds r in
  let checked = ref 0 and ok = ref 0 in
  Universe.iter
    (fun _ z ->
      if Prop.eval r_holds z then begin
        incr checked;
        if Prop.eval assertion z then incr ok
      end)
    u;
  Format.printf "r holds the token in %d computations; assertion holds in %d@."
    !checked !ok;

  (* the bus invariant, for good measure *)
  let inv = Token_bus.exactly_one_holder_or_flight ~n:5 in
  let inv_ok =
    Universe.fold (fun _ z acc -> acc && Prop.eval inv z) u true
  in
  Format.printf "bus invariant (one holder or in flight): %b@.@." inv_ok;

  (* show a run: walk the token p -> q -> r and print who-knows-what *)
  let pass src dst seq z =
    let m = Msg.make ~src ~dst ~seq ~payload:"token" in
    let z = Trace.snoc z (Event.send ~pid:src ~lseq:(Trace.local_length z src) m) in
    Trace.snoc z (Event.receive ~pid:dst ~lseq:(Trace.local_length z dst) m)
  in
  let p = Pid.of_int 0 and q = Pid.of_int 1 in
  let z0 = Trace.empty in
  let z1 = pass p q 0 z0 in
  let z2 = pass q r 0 z1 in
  List.iter
    (fun (label, z) ->
      Format.printf "%-18s holder=%s  assertion=%b@." label
        (match Token_bus.holder_at ~n:5 z with
        | Some h -> Pid.to_string h
        | None -> "(in flight)")
        (Prop.eval assertion z))
    [ ("initial", z0); ("p -> q", z1); ("q -> r", z2) ];

  (* a small isomorphism diagram of the first computations, as DOT *)
  let named =
    List.filteri (fun i _ -> i < 6)
      (Universe.fold (fun i z acc -> (string_of_int i, z) :: acc) u []
      |> List.rev)
  in
  let dg = Iso_diagram.of_computations ~all:(Pset.all 5) named in
  Format.printf "@.isomorphism diagram (first 6 computations), DOT:@.%s@."
    (Iso_diagram.to_dot dg)
