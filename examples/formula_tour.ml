(* A tour of the formula language: the paper's claims as one-liners.

     dune exec examples/formula_tour.exe

   Each row names a protocol from the registry, parses an
   epistemic-temporal formula, checks it over the protocol's universe,
   and prints the verdict — no protocol-specific code: systems and
   their atoms both come from `Protocol.Registry`, exactly as in
   `hpl check -s <name>`. *)
open Hpl_core
open Hpl_protocols

let () = Builtins.init ()

let universe_of ~depth name =
  match Protocol.Registry.parse name with
  | Error e -> failwith (name ^ ": " ^ e)
  | Ok inst ->
      (Universe.enumerate ~mode:`Canonical (Protocol.spec_of inst) ~depth, inst)

let verdict u env text =
  match Formula.parse text with
  | Error e -> Printf.sprintf "parse error: %s" e
  | Ok f -> (
      match Formula.check u ~env f with
      | Ok `Valid -> "VALID"
      | Ok (`Fails_at z) ->
          Printf.sprintf "fails (witness: %d-event computation)" (Trace.length z)
      | Error e -> "error: " ^ e)

let () =
  let systems =
    [
      ("token-bus:5", 8);  (* the paper's own example *)
      ("two-generals", 9);
      ("failure-detector:2", 5);  (* the crashable pair *)
    ]
  in
  let universes =
    List.map (fun (name, depth) -> (name, universe_of ~depth name)) systems
  in
  let rows =
    [
      ("token-bus:5", "AG (holds2 -> K p2 (K p1 (~holds0) & K p3 (~holds4)))");
      ("token-bus:5", "AG (holds2 -> ~holds0)");
      ("token-bus:5", "K p1 (~holds0)");
      ("token-bus:5", "EF holds4");
      ("two-generals", "EF (K p1 attack)");
      ("two-generals", "EF (K p0 (K p1 attack))");
      ("two-generals", "CK attack");
      ("two-generals", "AG (K p1 attack -> attack)");
      ("failure-detector:2", "EF crashed0");
      ("failure-detector:2", "EF (K p1 crashed0)");
      ("failure-detector:2", "AG (~K p1 crashed0)");
    ]
  in
  Printf.printf "%-18s %-58s %s\n" "system" "formula" "verdict";
  List.iter
    (fun (name, text) ->
      let u, inst = List.assoc name universes in
      Printf.printf "%-18s %-58s %s\n" name text
        (verdict u (Protocol.atom_env inst) text))
    rows;
  print_newline ();
  print_endline "Highlights: the §4.1 bus assertion is VALID; 'K p1 (~holds0)'";
  print_endline "alone is not (before the token moves, p1 knows nothing);";
  print_endline "each two-generals EF adds one deliverable message; CK never;";
  print_endline "and 'EF (K p1 crashed0)' fails — §5's failure-detection";
  print_endline "impossibility, as a formula."
